package hb

import (
	"sync"
	"sync/atomic"
	"time"
)

// Set is the common surface of the two state-set implementations: the
// plain single-goroutine StateSet and the lock-striped ShardedStateSet.
// The exploration engines hold this interface so a sequential search pays
// no synchronization while a parallel search shares one concurrent set
// across workers.
type Set interface {
	// Add inserts s and reports whether it was new.
	Add(s uint64) bool
	// Has reports membership.
	Has(s uint64) bool
	// Len returns the number of distinct states.
	Len() int
	// Elems returns the stored fingerprints in unspecified order (search
	// checkpoints sort before serializing). Not safe to call concurrently
	// with Add on the sharded implementation; checkpoints only read it at
	// execution boundaries and bound barriers, where no Add is in flight.
	Elems() []uint64
}

var (
	_ Set = (*StateSet)(nil)
	_ Set = (*ShardedStateSet)(nil)
)

// stateShards is the stripe count of ShardedStateSet. Fingerprints are
// splitmix64 outputs (full avalanche), so the low bits index uniformly;
// 64 stripes keep contention negligible for any plausible worker count.
const stateShards = 64

type stateShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
	// Pad each shard to its own cache line so neighboring locks do not
	// false-share under concurrent workers.
	_ [40]byte
}

// ShardedStateSet is a lock-striped Set safe for concurrent use by many
// exploration workers. Len is maintained as an atomic counter so the hot
// read (coverage sampling after every execution) takes no locks; it is
// exact whenever no Add is in flight (in particular at bound barriers).
type ShardedStateSet struct {
	shards [stateShards]stateShard
	n      atomic.Int64
}

// NewShardedStateSet returns an empty concurrent set.
func NewShardedStateSet() *ShardedStateSet {
	s := &ShardedStateSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

// Add inserts v and reports whether it was new. Safe for concurrent use.
func (s *ShardedStateSet) Add(v uint64) bool {
	sh := &s.shards[v&(stateShards-1)]
	sh.mu.Lock()
	if _, ok := sh.m[v]; ok {
		sh.mu.Unlock()
		return false
	}
	sh.m[v] = struct{}{}
	sh.mu.Unlock()
	s.n.Add(1)
	return true
}

// Contention observes contended lock acquires on a striped structure.
// Implemented (structurally) by the search profiler's per-worker lock
// observers; this package defines only the interface so it stays free of
// observability dependencies.
type Contention interface {
	// NoteWait records one acquire that found the lock held and waited ns
	// nanoseconds for it.
	NoteWait(ns int64)
}

// AddObserved is Add with contention accounting: an uncontended acquire
// takes the TryLock fast path and costs no clock reading; only when the
// shard lock is already held does it fall back to a timed blocking
// acquire, reported to c. A nil c behaves like Add.
func (s *ShardedStateSet) AddObserved(v uint64, c Contention) bool {
	sh := &s.shards[v&(stateShards-1)]
	if !sh.mu.TryLock() {
		if c != nil {
			t0 := time.Now()
			sh.mu.Lock()
			c.NoteWait(time.Since(t0).Nanoseconds())
		} else {
			sh.mu.Lock()
		}
	}
	if _, ok := sh.m[v]; ok {
		sh.mu.Unlock()
		return false
	}
	sh.m[v] = struct{}{}
	sh.mu.Unlock()
	s.n.Add(1)
	return true
}

// Has reports membership. Safe for concurrent use.
func (s *ShardedStateSet) Has(v uint64) bool {
	sh := &s.shards[v&(stateShards-1)]
	sh.mu.Lock()
	_, ok := sh.m[v]
	sh.mu.Unlock()
	return ok
}

// Len returns the number of distinct states inserted so far.
func (s *ShardedStateSet) Len() int { return int(s.n.Load()) }

// DefaultProbeQuantum is the flush threshold used by parallel search
// workers: small enough that Len stays near-fresh for coverage sampling,
// large enough to amortize a shard lock over many inserts.
const DefaultProbeQuantum = 64

// ProbeBuffer batches one worker's Add traffic against a ShardedStateSet.
// Instead of taking a shard lock per fingerprint, the worker appends to a
// private per-shard slice and flushes whole batches once `quantum` probes
// have accumulated (or explicitly at execution boundaries and safepoints,
// where the search needs Len to be exact). The buffer is strictly
// single-owner: only the worker that created it may call Probe or Flush.
//
// Buffered probes are fire-and-forget — callers that need Add's
// was-it-new result (the sequential engine does not; fingerprint observers
// discard it) must use Add/AddObserved directly.
type ProbeBuffer struct {
	set     *ShardedStateSet
	c       Contention
	quantum int
	pending int
	byShard [stateShards][]uint64
}

// NewProbeBuffer returns an empty buffer draining into set. A quantum of
// <= 1 disables batching (every Probe flushes immediately); c may be nil.
func NewProbeBuffer(set *ShardedStateSet, c Contention, quantum int) *ProbeBuffer {
	if quantum < 1 {
		quantum = 1
	}
	return &ProbeBuffer{set: set, c: c, quantum: quantum}
}

// Probe enqueues v for insertion, flushing if the quantum is reached.
func (b *ProbeBuffer) Probe(v uint64) {
	i := v & (stateShards - 1)
	b.byShard[i] = append(b.byShard[i], v)
	b.pending++
	if b.pending >= b.quantum {
		b.Flush()
	}
}

// Pending returns the number of buffered, not-yet-flushed probes.
func (b *ProbeBuffer) Pending() int { return b.pending }

// Flush drains every buffered probe into the set, taking each touched
// shard lock exactly once, and returns how many fingerprints were new.
// Duplicates within a batch count once (the first insert wins; the rest
// are hits against the just-inserted entry).
func (b *ProbeBuffer) Flush() int {
	if b.pending == 0 {
		return 0
	}
	added := 0
	for i := range b.byShard {
		vs := b.byShard[i]
		if len(vs) == 0 {
			continue
		}
		sh := &b.set.shards[i]
		if !sh.mu.TryLock() {
			if b.c != nil {
				t0 := time.Now()
				sh.mu.Lock()
				b.c.NoteWait(time.Since(t0).Nanoseconds())
			} else {
				sh.mu.Lock()
			}
		}
		for _, v := range vs {
			if _, ok := sh.m[v]; !ok {
				sh.m[v] = struct{}{}
				added++
			}
		}
		sh.mu.Unlock()
		b.byShard[i] = vs[:0]
	}
	if added > 0 {
		b.set.n.Add(int64(added))
	}
	b.pending = 0
	return added
}

// Elems returns the stored fingerprints in unspecified order. It takes the
// shard locks one at a time, so it is consistent only when no Add is in
// flight (bound barriers, stop points).
func (s *ShardedStateSet) Elems() []uint64 {
	out := make([]uint64, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for v := range sh.m {
			out = append(out, v)
		}
		sh.mu.Unlock()
	}
	return out
}
