package hb

import "icb/internal/sched"

// Dependent reports whether two operations are dependent in the
// Mazurkiewicz-trace sense: two executions that differ only by swapping
// adjacent independent steps reach the same state, while swapping adjacent
// dependent steps can change it. The relation is exactly
// sched.Op.Conflicts — same variable, always for synchronization
// operations, and on data variables only when at least one access writes.
//
// The bounded partial-order-reduction layer (package core) keys its
// backtracking and sleep sets on this relation; it lives next to the
// fingerprinter because the two must agree in one direction for the
// reduction to preserve the class counters: Dependent is at least as fine
// as the fingerprint's equivalence. For synchronization variables the
// fingerprint records the exact per-variable access order, which Dependent
// never commutes. For data variables the fingerprint deliberately drops
// cross-thread order altogether (conflicting data accesses are the race
// detector's department, §3.1), so Dependent is strictly finer there —
// covering every Dependent-trace therefore covers every fingerprint class,
// and a search pruned by this relation reports the same ExecutionClasses
// count as an unpruned one.
func Dependent(a, b sched.Op) bool { return a.Conflicts(b) }
