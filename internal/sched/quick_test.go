package sched_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"icb/internal/conc"
	"icb/internal/sched"
)

// genProgram builds a deterministic random program: a few threads doing a
// mix of lock-protected updates, event signaling, yields and data choices.
// It terminates on every schedule.
func genProgram(seed int64) sched.Program {
	return func(t *sched.T) {
		rng := rand.New(rand.NewSource(seed))
		m := conc.NewMutex(t, "m")
		ev := conc.NewEvent(t, "ev", false, false)
		x := conc.NewInt(t, "x", 0)
		a := conc.NewAtomicInt(t, "a", 0)
		nThreads := 2 + rng.Intn(2)
		plans := make([][]int, nThreads)
		for i := range plans {
			for j := 0; j < 2+rng.Intn(3); j++ {
				plans[i] = append(plans[i], rng.Intn(5))
			}
		}
		var ws []*sched.T
		for i := 0; i < nThreads; i++ {
			plan := plans[i]
			ws = append(ws, t.Go("w", func(t *sched.T) {
				for _, op := range plan {
					switch op {
					case 0:
						m.Lock(t)
						x.Update(t, func(v int) int { return v + 1 })
						m.Unlock(t)
					case 1:
						a.Add(t, 1)
					case 2:
						t.Yield()
					case 3:
						ev.Set(t)
					case 4:
						if t.Choose(2) == 1 {
							a.Add(t, 10)
						}
					}
				}
			}))
		}
		for _, w := range ws {
			t.Join(w)
		}
	}
}

// randomSchedule runs the program once under a seeded random controller
// and returns the recorded decisions.
type seededRandom struct{ rng *rand.Rand }

func (c *seededRandom) PickThread(info sched.PickInfo) (sched.TID, bool) {
	return info.Enabled[c.rng.Intn(len(info.Enabled))], true
}
func (c *seededRandom) PickData(_ sched.TID, n int) int { return c.rng.Intn(n) }

// TestReplayDeterminismQuick: for random programs under random schedules,
// replaying the recorded decision log reproduces the execution exactly —
// the property the whole stateless search rests on.
func TestReplayDeterminismQuick(t *testing.T) {
	prop := func(progSeed, schedSeed int64) bool {
		prog := genProgram(progSeed % 1000)
		first := sched.Run(prog, &seededRandom{rand.New(rand.NewSource(schedSeed))},
			sched.Config{RecordTrace: true})
		if first.Status != sched.StatusTerminated {
			t.Logf("prog %d sched %d: %v", progSeed, schedSeed, first)
			return false
		}
		replay := sched.Run(prog,
			&sched.ReplayController{Prefix: first.Decisions, Tail: sched.FirstEnabled{}},
			sched.Config{RecordTrace: true})
		if replay.Status != first.Status || replay.Steps != first.Steps ||
			replay.Preemptions != first.Preemptions ||
			replay.ContextSwitches != first.ContextSwitches ||
			len(replay.Trace) != len(first.Trace) {
			return false
		}
		for i := range replay.Trace {
			if replay.Trace[i] != first.Trace[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptionCountMatchesSwitchAccounting: on any execution,
// preemptions <= context switches, and a FirstEnabled run has zero
// preemptions (any state can be driven to completion without preemption —
// the paper's §2 argument).
func TestPreemptionCountMatchesSwitchAccounting(t *testing.T) {
	prop := func(progSeed, schedSeed int64) bool {
		prog := genProgram(progSeed % 1000)
		out := sched.Run(prog, &seededRandom{rand.New(rand.NewSource(schedSeed))}, sched.Config{})
		if out.Preemptions > out.ContextSwitches {
			return false
		}
		zero := sched.Run(prog, sched.FirstEnabled{}, sched.Config{})
		return zero.Status == sched.StatusTerminated && zero.Preemptions == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
