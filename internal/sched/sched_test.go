package sched_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"icb/internal/conc"
	"icb/internal/sched"
)

// script prefers a given thread at given global steps and otherwise behaves
// like FirstEnabled; data picks come from dataPicks in order.
type script struct {
	prefs     map[int]sched.TID
	dataPicks []int
	dataPos   int
}

func (s *script) PickThread(info sched.PickInfo) (sched.TID, bool) {
	if want, ok := s.prefs[info.Step]; ok && info.IsEnabled(want) {
		return want, true
	}
	if info.PrevEnabled {
		return info.Prev, true
	}
	return info.Enabled[0], true
}

func (s *script) PickData(_ sched.TID, n int) int {
	if s.dataPos < len(s.dataPicks) {
		v := s.dataPicks[s.dataPos]
		s.dataPos++
		if v < n {
			return v
		}
	}
	return 0
}

func run(t *testing.T, prog sched.Program, ctrl sched.Controller) sched.Outcome {
	t.Helper()
	if ctrl == nil {
		ctrl = sched.FirstEnabled{}
	}
	return sched.Run(prog, ctrl, sched.Config{RecordTrace: true})
}

func TestTrivialTermination(t *testing.T) {
	out := run(t, func(*sched.T) {}, nil)
	if out.Status != sched.StatusTerminated {
		t.Fatalf("status = %v, want terminated", out.Status)
	}
	// Main thread executes exactly its start and exit ops.
	if out.Steps != 2 {
		t.Fatalf("steps = %d, want 2", out.Steps)
	}
	if out.Preemptions != 0 || out.ContextSwitches != 0 {
		t.Fatalf("preemptions=%d switches=%d, want 0/0", out.Preemptions, out.ContextSwitches)
	}
	if out.Threads != 1 {
		t.Fatalf("threads = %d, want 1", out.Threads)
	}
}

func TestSpawnJoinCounts(t *testing.T) {
	out := run(t, func(t *sched.T) {
		c := t.Go("child", func(t *sched.T) { t.Yield() })
		t.Join(c)
	}, nil)
	if out.Status != sched.StatusTerminated {
		t.Fatalf("status = %v, want terminated", out.Status)
	}
	// main: start, spawn, join, exit = 4; child: start, yield, exit = 3.
	if out.Steps != 7 {
		t.Fatalf("steps = %d, want 7", out.Steps)
	}
	if out.Threads != 2 {
		t.Fatalf("threads = %d, want 2", out.Threads)
	}
	// Join is blocking: main executed exactly one blocking op.
	if out.Blocking != 1 {
		t.Fatalf("blocking = %d, want 1", out.Blocking)
	}
	// FirstEnabled switches to the child only when main blocks at Join, and
	// back when the child dies: two switches, zero preemptions.
	if out.Preemptions != 0 {
		t.Fatalf("preemptions = %d, want 0", out.Preemptions)
	}
	if out.ContextSwitches != 2 {
		t.Fatalf("switches = %d, want 2", out.ContextSwitches)
	}
}

func TestZeroPreemptionCompletion(t *testing.T) {
	// §2: from any state a terminating program can be driven to completion
	// without preemptions, e.g. by round-robin without preemption. Check a
	// program with plenty of blocking interaction still finishes with c=0
	// under FirstEnabled.
	out := run(t, func(t *sched.T) {
		m := conc.NewMutex(t, "m")
		total := conc.NewInt(t, "total", 0)
		var kids []*sched.T
		for i := 0; i < 3; i++ {
			kids = append(kids, t.Go("worker", func(t *sched.T) {
				for j := 0; j < 4; j++ {
					m.Lock(t)
					total.Update(t, func(v int) int { return v + 1 })
					m.Unlock(t)
				}
			}))
		}
		for _, k := range kids {
			t.Join(k)
		}
		t.Assert(total.Load(t) == 12, "total = %d, want 12", total.Load(t))
	}, nil)
	if out.Status != sched.StatusTerminated {
		t.Fatalf("status = %v (%s), want terminated", out.Status, out.Message)
	}
	if out.Preemptions != 0 {
		t.Fatalf("preemptions = %d, want 0", out.Preemptions)
	}
}

func TestPreemptionCounting(t *testing.T) {
	// Force a switch away from an enabled main thread: that is exactly one
	// preemption.
	var mainFirstYield int
	out := run(t, func(t *sched.T) {
		t.Go("child", func(t *sched.T) { t.Yield(); t.Yield() })
		t.Yield()
		t.Yield()
	}, &script{prefs: map[int]sched.TID{3: 1}})
	_ = mainFirstYield
	if out.Status != sched.StatusTerminated {
		t.Fatalf("status = %v, want terminated", out.Status)
	}
	if out.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want exactly 1 (got switches=%d)\ndecisions: %v",
			out.Preemptions, out.ContextSwitches, out.Decisions)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Classic lock-order inversion; steer each thread to take its first
	// lock, then the cross acquisition deadlocks.
	out := run(t, func(t *sched.T) {
		a := conc.NewMutex(t, "a")
		b := conc.NewMutex(t, "b")
		t.Go("one", func(t *sched.T) { a.Lock(t); b.Lock(t); b.Unlock(t); a.Unlock(t) })
		t.Go("two", func(t *sched.T) { b.Lock(t); a.Lock(t); a.Unlock(t); b.Unlock(t) })
	}, &script{prefs: map[int]sched.TID{
		// main: start(0), spawn(1), spawn(2), exit(3); then t1 start+lock a,
		// then prefer t2 to start and lock b, then both block.
		4: 1, // t1 start
		5: 1, // t1 lock a
		6: 2, // t2 start
		7: 2, // t2 lock b
	}})
	if out.Status != sched.StatusDeadlock {
		t.Fatalf("status = %v (%s), want deadlock", out.Status, out.Message)
	}
}

func TestAssertFailureAborts(t *testing.T) {
	out := run(t, func(t *sched.T) {
		t.Go("w", func(t *sched.T) {
			for {
				t.Yield()
			}
		})
		t.Assert(false, "boom %d", 42)
	}, nil)
	if out.Status != sched.StatusAssertFailed {
		t.Fatalf("status = %v, want assert failed", out.Status)
	}
	if out.Message != "boom 42" {
		t.Fatalf("message = %q", out.Message)
	}
}

func TestPanicCaptured(t *testing.T) {
	out := run(t, func(t *sched.T) {
		var p *int
		_ = *p // real nil dereference inside modeled code
	}, nil)
	if out.Status != sched.StatusPanic {
		t.Fatalf("status = %v, want panic", out.Status)
	}
	if out.PanicValue == nil {
		t.Fatal("missing panic value")
	}
}

func TestStepLimitOnSyncLoop(t *testing.T) {
	out := sched.Run(func(t *sched.T) {
		for {
			t.Yield()
		}
	}, sched.FirstEnabled{}, sched.Config{MaxSteps: 100})
	if out.Status != sched.StatusStepLimit {
		t.Fatalf("status = %v, want step limit", out.Status)
	}
}

func TestStepLimitOnDataLoop(t *testing.T) {
	out := sched.Run(func(t *sched.T) {
		x := conc.NewInt(t, "x", 0)
		for {
			x.Update(t, func(v int) int { return v + 1 })
		}
	}, sched.FirstEnabled{}, sched.Config{MaxSteps: 100})
	if out.Status != sched.StatusStepLimit {
		t.Fatalf("status = %v, want step limit", out.Status)
	}
}

type stopAfter struct{ n int }

func (s *stopAfter) PickThread(info sched.PickInfo) (sched.TID, bool) {
	if info.Step >= s.n {
		return sched.NoTID, false
	}
	return info.Enabled[0], true
}
func (s *stopAfter) PickData(sched.TID, int) int { return 0 }

func TestControllerStop(t *testing.T) {
	out := run(t, func(t *sched.T) {
		for i := 0; i < 100; i++ {
			t.Yield()
		}
	}, &stopAfter{n: 10})
	if out.Status != sched.StatusStopped {
		t.Fatalf("status = %v, want stopped", out.Status)
	}
	if out.Steps != 10 {
		t.Fatalf("steps = %d, want 10", out.Steps)
	}
}

func TestChoose(t *testing.T) {
	got := -1
	out := run(t, func(t *sched.T) {
		got = t.Choose(5)
	}, &script{dataPicks: []int{3}})
	if out.Status != sched.StatusTerminated {
		t.Fatalf("status = %v", out.Status)
	}
	if got != 3 {
		t.Fatalf("choose = %d, want 3", got)
	}
	// Data decisions appear in the log.
	found := false
	for _, d := range out.Decisions {
		if d.Kind == sched.DecisionData && d.Data == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("data decision missing from log: %v", out.Decisions)
	}
}

func interleaved(t *sched.T) {
	m := conc.NewMutex(t, "m")
	n := conc.NewInt(t, "n", 0)
	done := conc.NewWaitGroup(t, "wg", 2)
	for i := 0; i < 2; i++ {
		t.Go("w", func(t *sched.T) {
			v := t.Choose(3)
			m.Lock(t)
			n.Update(t, func(x int) int { return x + v })
			m.Unlock(t)
			done.Done(t)
		})
	}
	done.Wait(t)
}

func TestReplayReproducesExecution(t *testing.T) {
	orig := run(t, interleaved, &script{
		prefs:     map[int]sched.TID{4: 2, 7: 1, 9: 2},
		dataPicks: []int{2, 1},
	})
	if orig.Status != sched.StatusTerminated {
		t.Fatalf("original status = %v (%s)", orig.Status, orig.Message)
	}
	replay := sched.Run(interleaved,
		&sched.ReplayController{Prefix: orig.Decisions, Tail: sched.FirstEnabled{}},
		sched.Config{RecordTrace: true})
	if replay.Status != orig.Status || replay.Steps != orig.Steps ||
		replay.Preemptions != orig.Preemptions {
		t.Fatalf("replay mismatch: %v vs %v", replay, orig)
	}
	if len(replay.Trace) != len(orig.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(replay.Trace), len(orig.Trace))
	}
	for i := range replay.Trace {
		if replay.Trace[i] != orig.Trace[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, replay.Trace[i], orig.Trace[i])
		}
	}
}

func TestReplayDivergenceDetected(t *testing.T) {
	// Replaying a schedule from a different program reports divergence
	// rather than corrupting the search.
	orig := run(t, interleaved, nil)
	other := func(t *sched.T) {
		for i := 0; i < 50; i++ {
			t.Yield()
		}
	}
	out := sched.Run(other,
		&sched.ReplayController{Prefix: orig.Decisions, Tail: sched.FirstEnabled{}},
		sched.Config{})
	if out.Status != sched.StatusReplayDiverged {
		t.Fatalf("status = %v, want replay diverged", out.Status)
	}
}

func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		run(t, func(t *sched.T) {
			t.Go("spin", func(t *sched.T) {
				for {
					t.Yield()
				}
			})
			t.Go("blocked", func(t *sched.T) {
				e := conc.NewEvent(t, "never", false, false)
				e.Wait(t)
			})
			t.Fail("die")
		}, nil)
	}
	// Let exited goroutines be reaped.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if g := runtime.NumGoroutine(); g > before+5 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, g)
	}
}

func TestTraceEventOrdering(t *testing.T) {
	out := run(t, func(t *sched.T) {
		c := t.Go("c", func(t *sched.T) { t.Yield() })
		t.Join(c)
	}, nil)
	for i, ev := range out.Trace {
		if ev.Step != i {
			t.Fatalf("event %d has step %d", i, ev.Step)
		}
	}
	// Per-thread indexes are contiguous from zero.
	next := map[sched.TID]int{}
	for _, ev := range out.Trace {
		if ev.Index != next[ev.TID] {
			t.Fatalf("thread %d index %d, want %d", ev.TID, ev.Index, next[ev.TID])
		}
		next[ev.TID]++
	}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	orig := sched.Schedule{
		sched.ThreadDecision(0), sched.ThreadDecision(2),
		sched.DataDecision(1), sched.ThreadDecision(10),
	}
	parsed, err := sched.ParseSchedule(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(orig) {
		t.Fatalf("length %d != %d", len(parsed), len(orig))
	}
	for i := range parsed {
		if parsed[i] != orig[i] {
			t.Fatalf("decision %d: %v != %v", i, parsed[i], orig[i])
		}
	}
	for _, bad := range []string{"x3", "t", "t-1", "tq", "d1 zz"} {
		if _, err := sched.ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) succeeded", bad)
		}
	}
	if s, err := sched.ParseSchedule("  "); err != nil || len(s) != 0 {
		t.Fatalf("empty schedule: %v %v", s, err)
	}
}

func TestTraceStringsUseNames(t *testing.T) {
	out := run(t, func(t *sched.T) {
		m := conc.NewMutex(t, "mylock")
		w := t.Go("helper", func(t *sched.T) { m.Lock(t); m.Unlock(t) })
		t.Join(w)
	}, nil)
	lines := out.TraceStrings()
	if len(lines) != len(out.Trace) {
		t.Fatalf("lines = %d, events = %d", len(lines), len(out.Trace))
	}
	joined := ""
	for _, l := range lines {
		joined += l + "\n"
	}
	for _, want := range []string{"mylock", "helper", "main", "acquire", "release"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q:\n%s", want, joined)
		}
	}
}
