package sched

import (
	"fmt"
	"strings"
)

// Swimlane renders a recorded trace as a thread-per-column diagram, the
// way concurrency bugs are drawn on whiteboards: time flows down, each
// column is a thread, and each row shows the operation the scheduled
// thread performed. Context switches draw a separator; preempting switches
// are marked. Requires Config.RecordTrace.
//
//	      main            worker1         worker2
//	───────────────────────────────────────────────────
//	 1 │ acquire bt.stateLock
//	 2 │ read bt.stoppingFlag
//	   ├─ preempted ─────────────────────────────────
//	 3 │                 acquire bt.stateLock
//
// The result is plain text (no ANSI), suitable for test logs.
func Swimlane(o Outcome) string {
	if len(o.Trace) == 0 {
		return "(no trace recorded; set Config.RecordTrace)\n"
	}
	nThreads := o.Threads
	const colWidth = 26

	name := func(names []string, i int, prefix string) string {
		if i >= 0 && i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("%s%d", prefix, i)
	}
	// truncate cuts s to at most n runes; byte-slicing would split
	// multi-byte runes in the middle (thread and variable names are
	// user-supplied and may contain any UTF-8).
	truncate := func(s string, n int) string {
		r := []rune(s)
		if len(r) > n {
			return string(r[:n])
		}
		return s
	}
	var b strings.Builder

	// Header: thread names centered over their columns.
	b.WriteString("      ")
	for tid := 0; tid < nThreads; tid++ {
		label := truncate(fmt.Sprintf("t%d:%s", tid, name(o.ThreadNames, tid, "t")), colWidth-2)
		width := len([]rune(label))
		pad := (colWidth - width) / 2
		b.WriteString(strings.Repeat(" ", pad))
		b.WriteString(label)
		b.WriteString(strings.Repeat(" ", colWidth-pad-width))
	}
	b.WriteByte('\n')
	b.WriteString("  ")
	b.WriteString(strings.Repeat("─", 4+colWidth*nThreads))
	b.WriteByte('\n')

	// The runtime records the step at which each preempting switch took
	// effect (Outcome.PreemptedSteps), so preempting switches — the ones
	// ICB budgets — are visually distinct from voluntary hand-offs.
	preempted := make(map[int]bool, len(o.PreemptedSteps))
	for _, s := range o.PreemptedSteps {
		preempted[s] = true
	}
	prev := NoTID
	for _, ev := range o.Trace {
		if ev.TID != prev && prev != NoTID {
			sep := "switch"
			if preempted[ev.Step] {
				sep = "preempted"
			}
			b.WriteString("     ├─ ")
			b.WriteString(sep)
			b.WriteByte(' ')
			b.WriteString(strings.Repeat("─", colWidth*nThreads-4-len(sep)))
			b.WriteByte('\n')
		}
		prev = ev.TID
		opText := truncate(fmt.Sprintf("%s %s", ev.Op.Kind, name(o.VarNames, int(ev.Op.Var), "var#")), colWidth-1)
		fmt.Fprintf(&b, "%4d │ %s%s\n", ev.Step, strings.Repeat(" ", colWidth*int(ev.TID)), opText)
	}

	fmt.Fprintf(&b, "  %s\n", strings.Repeat("─", 4+colWidth*nThreads))
	fmt.Fprintf(&b, "  outcome: %s\n", o.String())
	return b.String()
}
