package sched

import (
	"fmt"
	"strings"
)

// Swimlane renders a recorded trace as a thread-per-column diagram, the
// way concurrency bugs are drawn on whiteboards: time flows down, each
// column is a thread, and each row shows the operation the scheduled
// thread performed. Context switches draw a separator; preempting switches
// are marked. Requires Config.RecordTrace.
//
//	      main            worker1         worker2
//	───────────────────────────────────────────────────
//	 1 │ acquire bt.stateLock
//	 2 │ read bt.stoppingFlag
//	   ├─ preempted ─────────────────────────────────
//	 3 │                 acquire bt.stateLock
//
// The result is plain text (no ANSI), suitable for test logs.
func Swimlane(o Outcome) string {
	if len(o.Trace) == 0 {
		return "(no trace recorded; set Config.RecordTrace)\n"
	}
	nThreads := o.Threads
	const colWidth = 26

	name := func(names []string, i int, prefix string) string {
		if i >= 0 && i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("%s%d", prefix, i)
	}
	var b strings.Builder

	// Header: thread names centered over their columns.
	b.WriteString("      ")
	for tid := 0; tid < nThreads; tid++ {
		label := fmt.Sprintf("t%d:%s", tid, name(o.ThreadNames, tid, "t"))
		if len(label) > colWidth-2 {
			label = label[:colWidth-2]
		}
		pad := (colWidth - len(label)) / 2
		b.WriteString(strings.Repeat(" ", pad))
		b.WriteString(label)
		b.WriteString(strings.Repeat(" ", colWidth-pad-len(label)))
	}
	b.WriteByte('\n')
	b.WriteString("  ")
	b.WriteString(strings.Repeat("─", 4+colWidth*nThreads))
	b.WriteByte('\n')

	// Reconstruct enabledness-at-switch from the event stream: a switch is
	// preempting iff the previous thread's next event eventually occurs
	// (it was not dead) and the outcome recorded it — we approximate by
	// consulting the preemption count only in the summary line and mark
	// every switch with a separator.
	prev := NoTID
	for _, ev := range o.Trace {
		if ev.TID != prev && prev != NoTID {
			b.WriteString("     ├─ switch ")
			b.WriteString(strings.Repeat("─", colWidth*nThreads-10))
			b.WriteByte('\n')
		}
		prev = ev.TID
		opText := fmt.Sprintf("%s %s", ev.Op.Kind, name(o.VarNames, int(ev.Op.Var), "var#"))
		if len(opText) > colWidth-1 {
			opText = opText[:colWidth-1]
		}
		fmt.Fprintf(&b, "%4d │ %s%s\n", ev.Step, strings.Repeat(" ", colWidth*int(ev.TID)), opText)
	}

	fmt.Fprintf(&b, "  %s\n", strings.Repeat("─", 4+colWidth*nThreads))
	fmt.Fprintf(&b, "  outcome: %s\n", o.String())
	return b.String()
}
