package sched

import "fmt"

// Mode selects where scheduling points are introduced.
type Mode uint8

const (
	// ModeSyncOnly introduces scheduling points only at accesses to
	// synchronization variables; data-variable accesses commit atomically
	// with the preceding step. This is the §3.1 reduction, sound when
	// combined with per-execution data-race detection (Theorems 2 and 3).
	ModeSyncOnly Mode = iota
	// ModeEveryAccess introduces a scheduling point at every shared access,
	// the unreduced model of §2.
	ModeEveryAccess
)

// String returns "sync-only" or "every-access".
func (m Mode) String() string {
	if m == ModeEveryAccess {
		return "every-access"
	}
	return "sync-only"
}

// DefaultMaxSteps bounds a single execution; exceeding it yields
// StatusStepLimit (a livelock under the assumption that the program under
// test terminates on every schedule, which stateless exploration requires).
const DefaultMaxSteps = 1 << 20

// Config parameterizes a Runtime.
type Config struct {
	// Mode selects the scheduling-point strategy (default ModeSyncOnly).
	Mode Mode
	// MaxSteps bounds the number of steps per execution (default
	// DefaultMaxSteps).
	MaxSteps int
	// RecordTrace retains the full event log in Outcome.Trace.
	RecordTrace bool
	// Observers receive every committed event.
	Observers []Observer
	// PointObserver, when non-nil, receives every resolved thread-scheduling
	// decision (see PointInfo). It is the coverage-atlas hook; nil disables
	// the observation entirely.
	PointObserver PointObserver
}

// Program is the body of the main thread of the program under test. All
// shared state must be created inside the program (via the passed thread),
// so that re-running the program yields a fresh, deterministic instance.
type Program func(t *T)

type tmsgKind uint8

const (
	msgParked  tmsgKind = iota // parked at a scheduling point
	msgChoose                  // parked at a data-choice point
	msgExited                  // committed the exit op; thread is dead
	msgAssert                  // assertion failed
	msgPanic                   // program panicked
	msgAborted                 // observed the abort signal and unwound
)

type tmsg struct {
	kind tmsgKind
	t    *T
	msg  string
	pv   any
}

type resumeMsg struct {
	abort  bool
	chosen int
}

type abortSignal struct{}

type assertFailure struct{ msg string }

// Runtime executes one program once under the control of a Controller. A
// Runtime is single-use; create a new one (via Run) per execution.
//
// Exactly one goroutine runs at any time: either the controller (inside
// Run's loop) or the single scheduled thread. Hand-off happens through
// channels, which establishes happens-before for all runtime state, so the
// modeled execution is free of real data races by construction.
type Runtime struct {
	cfg  Config
	ctrl Controller

	threads   []*T
	varNames  []string
	steps     int
	decisions Schedule
	trace     []Event

	preemptions    int
	switches       int
	prev           TID
	preemptedSteps []int

	hitStepLimit bool
	aborting     bool
	events       chan tmsg

	enabledBuf []TID
	opsBuf     []Op
}

// Run executes prog to completion under ctrl and returns its outcome. It
// never leaks goroutines: on any early exit, all modeled threads are
// unwound before Run returns.
func Run(prog Program, ctrl Controller, cfg Config) (out Outcome) {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	rt := &Runtime{
		cfg:    cfg,
		ctrl:   ctrl,
		events: make(chan tmsg),
	}
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(*ReplayError)
			if !ok {
				panic(r)
			}
			// The controller goroutine panicked between slices; every live
			// modeled goroutine is parked and can be unwound safely.
			rt.abortAll()
			out = rt.outcome(StatusReplayDiverged, re.Error(), nil)
		}
	}()

	main := rt.allocThread("main")
	main.spawned = true
	rt.startThread(main, prog)
	return rt.loop()
}

// allocThread creates the bookkeeping for a new thread. Called from the
// currently running goroutine (or from Run for the main thread); the
// controller is parked, so this is race-free.
func (rt *Runtime) allocThread(name string) *T {
	t := &T{
		rt:     rt,
		id:     TID(len(rt.threads)),
		name:   name,
		resume: make(chan resumeMsg),
	}
	t.etVar = rt.allocVar(fmt.Sprintf("thread:%s", name))
	rt.threads = append(rt.threads, t)
	return t
}

func (rt *Runtime) allocVar(name string) VarID {
	id := VarID(len(rt.varNames))
	rt.varNames = append(rt.varNames, name)
	return id
}

// startThread launches the goroutine of a spawned thread. The goroutine
// immediately parks on its resume channel; its initial pending operation
// (the thread-start access of its thread variable) was installed here.
func (rt *Runtime) startThread(t *T, fn func(*T)) {
	t.pending = &pendingOp{op: Op{Kind: OpAcquire, Var: t.etVar, Class: ClassSync}}
	t.goroutineLive = true
	go t.main(fn)
}

type sliceEnd uint8

const (
	sliceParked sliceEnd = iota
	sliceExited
	sliceAssert
	slicePanic
	sliceStepLimit
)

// loop is the controller loop: it alternates between computing the enabled
// set, consulting the Controller, and running the chosen thread for one
// slice (up to its next scheduling point).
func (rt *Runtime) loop() Outcome {
	rt.prev = NoTID
	for {
		if rt.steps >= rt.cfg.MaxSteps {
			rt.abortAll()
			return rt.outcome(StatusStepLimit, fmt.Sprintf("execution exceeded %d steps", rt.cfg.MaxSteps), nil)
		}
		enabled, ops, live, prevEnabled := rt.enabledSet()
		if live == 0 {
			return rt.outcome(StatusTerminated, "", nil)
		}
		if len(enabled) == 0 {
			msg := rt.deadlockMessage()
			rt.abortAll()
			return rt.outcome(StatusDeadlock, msg, nil)
		}
		info := PickInfo{
			Step:        rt.steps,
			Prev:        rt.prev,
			PrevEnabled: prevEnabled,
			Enabled:     enabled,
			Ops:         ops,
		}
		tid, ok := rt.ctrl.PickThread(info)
		if !ok {
			rt.abortAll()
			return rt.outcome(StatusStopped, "", nil)
		}
		if !info.IsEnabled(tid) {
			panic(fmt.Sprintf("sched: controller picked t%d, not in enabled set %v", tid, enabled))
		}
		rt.decisions = append(rt.decisions, ThreadDecision(tid))
		if rt.cfg.PointObserver != nil {
			rt.observePoint(info, tid, prevEnabled)
		}
		if rt.prev != NoTID && tid != rt.prev {
			rt.switches++
			if prevEnabled {
				rt.preemptions++
				if rt.cfg.RecordTrace {
					// rt.steps is the global index the incoming thread's
					// next commit will get, which is where trace renderers
					// draw the preemption separator.
					rt.preemptedSteps = append(rt.preemptedSteps, rt.steps)
				}
			}
		}
		rt.prev = tid

		end, m := rt.runSlice(rt.threads[tid])
		switch end {
		case sliceParked, sliceExited:
			// Continue the controller loop.
		case sliceAssert:
			rt.abortAll()
			return rt.outcome(StatusAssertFailed, m.msg, nil)
		case slicePanic:
			rt.abortAll()
			return rt.outcome(StatusPanic, m.msg, m.pv)
		case sliceStepLimit:
			rt.abortAll()
			return rt.outcome(StatusStepLimit, fmt.Sprintf("execution exceeded %d steps", rt.cfg.MaxSteps), nil)
		}
	}
}

// runSlice resumes t and processes thread messages until the slice ends:
// the thread parks at its next scheduling point, exits, or fails. Data
// choices are resolved inline (the same thread continues; a Choose point is
// harness nondeterminism, not a shared access, so no context switch can
// occur there).
func (rt *Runtime) runSlice(t *T) (sliceEnd, tmsg) {
	t.resume <- resumeMsg{}
	for {
		m := <-rt.events
		switch m.kind {
		case msgParked:
			return sliceParked, m
		case msgChoose:
			n := m.t.pending.chooseN
			v := rt.ctrl.PickData(m.t.id, n)
			if v < 0 || v >= n {
				panic(fmt.Sprintf("sched: controller picked data value %d outside [0,%d)", v, n))
			}
			rt.decisions = append(rt.decisions, DataDecision(v))
			for _, o := range rt.cfg.Observers {
				if co, ok := o.(ChoiceObserver); ok {
					co.OnChoice(m.t.id, n, v)
				}
			}
			m.t.resume <- resumeMsg{chosen: v}
		case msgExited:
			m.t.goroutineLive = false
			return sliceExited, m
		case msgAssert:
			m.t.goroutineLive = false
			return sliceAssert, m
		case msgPanic:
			m.t.goroutineLive = false
			return slicePanic, m
		case msgAborted:
			// The running thread tripped the step limit inside a slice (a
			// data-access loop that never reached a scheduling point).
			m.t.goroutineLive = false
			return sliceStepLimit, m
		}
	}
}

// enabledSet computes the enabled threads in ascending TID order, their
// pending ops, the number of live threads, and whether the previously
// running thread is enabled.
func (rt *Runtime) enabledSet() (enabled []TID, ops []Op, live int, prevEnabled bool) {
	rt.enabledBuf = rt.enabledBuf[:0]
	rt.opsBuf = rt.opsBuf[:0]
	for _, t := range rt.threads {
		if !t.spawned || t.dead || !t.goroutineLive {
			continue
		}
		live++
		p := t.pending
		if p == nil || p.chooseN > 0 {
			// Invariant violation: between slices every live thread is
			// parked at a scheduling point.
			panic(fmt.Sprintf("sched: live thread t%d not parked at a scheduling point", t.id))
		}
		if p.guard != nil && !p.guard() {
			continue
		}
		rt.enabledBuf = append(rt.enabledBuf, t.id)
		rt.opsBuf = append(rt.opsBuf, p.op)
		if t.id == rt.prev {
			prevEnabled = true
		}
	}
	return rt.enabledBuf, rt.opsBuf, live, prevEnabled
}

// deadlockMessage describes which threads are blocked on what.
func (rt *Runtime) deadlockMessage() string {
	s := "deadlock:"
	for _, t := range rt.threads {
		if !t.spawned || t.dead || !t.goroutineLive {
			continue
		}
		s += fmt.Sprintf(" t%d(%s) blocked at %s %q;", t.id, t.name, t.pending.op.Kind, rt.VarName(t.pending.op.Var))
	}
	return s
}

// abortAll unwinds every live modeled goroutine. Precondition: the
// controller is between slices (every live goroutine is parked either at a
// scheduling point or on its initial resume).
func (rt *Runtime) abortAll() {
	rt.aborting = true
	for _, t := range rt.threads {
		if !t.goroutineLive {
			continue
		}
		t.resume <- resumeMsg{abort: true}
		for {
			m := <-rt.events
			m.t.goroutineLive = false
			if m.t == t && m.kind == msgAborted {
				break
			}
			// A thread may race its own exit against the abort only if it
			// was mid-slice, which the precondition excludes; any other
			// message here is an invariant violation.
			panic(fmt.Sprintf("sched: unexpected message %d from t%d during abort", m.kind, m.t.id))
		}
	}
}

// outcome assembles the Outcome.
func (rt *Runtime) outcome(st Status, msg string, pv any) Outcome {
	maxBlocking := 0
	for _, t := range rt.threads {
		if t.blocking > maxBlocking {
			maxBlocking = t.blocking
		}
	}
	out := Outcome{
		Status:          st,
		Message:         msg,
		Steps:           rt.steps,
		Blocking:        maxBlocking,
		Preemptions:     rt.preemptions,
		ContextSwitches: rt.switches,
		Threads:         len(rt.threads),
		Decisions:       rt.decisions,
		Trace:           rt.trace,
		PanicValue:      pv,
	}
	if rt.cfg.RecordTrace {
		out.VarNames = rt.varNames
		out.PreemptedSteps = rt.preemptedSteps
		for _, t := range rt.threads {
			out.ThreadNames = append(out.ThreadNames, t.name)
		}
	}
	return out
}

// VarName returns the debug name a variable was registered with.
func (rt *Runtime) VarName(v VarID) string {
	if v >= 0 && int(v) < len(rt.varNames) {
		return rt.varNames[v]
	}
	return fmt.Sprintf("var#%d", v)
}
