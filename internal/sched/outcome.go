package sched

import "fmt"

// Status classifies how an execution ended.
type Status uint8

const (
	// StatusTerminated means every thread ran to completion: the canonical
	// "terminating execution" of the paper.
	StatusTerminated Status = iota
	// StatusDeadlock means at least one thread is alive but none is enabled.
	StatusDeadlock
	// StatusAssertFailed means a modeled assertion failed.
	StatusAssertFailed
	// StatusPanic means the program panicked (a modeled crash, e.g. a
	// use-after-free trap).
	StatusPanic
	// StatusStopped means the controller cut the execution short (used by
	// depth-bounded search).
	StatusStopped
	// StatusStepLimit means the execution exceeded Config.MaxSteps, which for
	// a supposedly terminating program indicates a livelock.
	StatusStepLimit
	// StatusReplayDiverged means a ReplayController detected nondeterminism
	// outside the scheduler's control.
	StatusReplayDiverged
)

var statusNames = [...]string{
	StatusTerminated:     "terminated",
	StatusDeadlock:       "deadlock",
	StatusAssertFailed:   "assertion failed",
	StatusPanic:          "panic",
	StatusStopped:        "stopped",
	StatusStepLimit:      "step limit exceeded",
	StatusReplayDiverged: "replay diverged",
}

// String returns a human-readable status name.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Buggy reports whether the status indicates a bug in the program under
// test (as opposed to normal termination or a search-imposed cut).
func (s Status) Buggy() bool {
	switch s {
	case StatusDeadlock, StatusAssertFailed, StatusPanic:
		return true
	}
	return false
}

// Outcome summarizes one execution. Steps/Blocking/Preemptions are the K, B
// and c statistics of Table 1.
type Outcome struct {
	// Status says how the execution ended.
	Status Status
	// Message carries the assertion or panic message for buggy statuses.
	Message string
	// Steps is the total number of shared-variable accesses (K).
	Steps int
	// Blocking is the maximum number of potentially-blocking operations
	// executed by any single thread (B).
	Blocking int
	// Preemptions is the number of preempting context switches (c), counted
	// per Appendix A: a switch away from a still-enabled thread.
	Preemptions int
	// ContextSwitches is the total number of context switches, preempting or
	// not.
	ContextSwitches int
	// Threads is the number of threads created.
	Threads int
	// Decisions is the full decision log; replaying it reproduces the
	// execution exactly.
	Decisions Schedule
	// Trace is the full event log (nil unless Config.RecordTrace).
	Trace []Event
	// VarNames maps VarIDs to their registration names (nil unless
	// Config.RecordTrace), for rendering traces.
	VarNames []string
	// ThreadNames maps TIDs to their spawn names (nil unless
	// Config.RecordTrace).
	ThreadNames []string
	// PreemptedSteps lists the global step indices at which a preempting
	// context switch took effect: the listed step is the first one the
	// incoming thread runs after preempting a still-enabled thread (nil
	// unless Config.RecordTrace).
	PreemptedSteps []int
	// PanicValue holds the recovered panic value for StatusPanic.
	PanicValue any
}

// TraceStrings renders the trace with thread and variable names, one line
// per event, e.g. "worker[3] acquire dryad.m_baseCS". Empty without
// RecordTrace.
func (o Outcome) TraceStrings() []string {
	name := func(names []string, i int, prefix string) string {
		if i >= 0 && i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("%s%d", prefix, i)
	}
	var out []string
	for _, ev := range o.Trace {
		out = append(out, fmt.Sprintf("t%d:%s[%d] %s %s",
			ev.TID, name(o.ThreadNames, int(ev.TID), "t"), ev.Index,
			ev.Op.Kind, name(o.VarNames, int(ev.Op.Var), "var#")))
	}
	return out
}

// String renders a one-line summary.
func (o Outcome) String() string {
	s := fmt.Sprintf("%s: steps=%d blocking=%d preemptions=%d switches=%d threads=%d",
		o.Status, o.Steps, o.Blocking, o.Preemptions, o.ContextSwitches, o.Threads)
	if o.Message != "" {
		s += ": " + o.Message
	}
	return s
}
