// Package sched implements a deterministic cooperative scheduler for modeled
// multithreaded programs. It is the execution substrate of the iterative
// context bounding (ICB) model checker: every shared-variable access is an
// explicit scheduling point, the scheduler has an exact enabled-set oracle,
// and an execution is fully determined by the sequence of decisions made at
// its scheduling points, so any execution can be replayed bit-for-bit.
//
// The model follows Musuvathi & Qadeer (PLDI 2007) §2 and Appendix A: each
// step of a thread accesses exactly one shared variable; variables are
// partitioned into synchronization variables and data variables; a thread's
// first operation accesses the synchronization variable associated with the
// thread (signaled by its parent at creation), and a thread terminates by a
// final fictitious operation on that variable.
package sched

import "fmt"

// TID identifies a modeled thread within one execution. Thread IDs are
// assigned deterministically in spawn order, starting at 0 for the main
// thread.
type TID int

// NoTID is the sentinel "no thread" value, used e.g. as the previous thread
// at the very first scheduling point of an execution.
const NoTID TID = -1

// VarID identifies a shared variable (data or synchronization) within one
// execution. IDs are assigned deterministically in allocation order.
type VarID int32

// NoVar is the sentinel "no variable" value.
const NoVar VarID = -1

// VarClass partitions shared variables into data and synchronization
// variables, mirroring DataVar/SyncVar of the paper. Scheduling points are
// introduced at synchronization accesses; data accesses are recorded for the
// race detector and (optionally, see ModeEveryAccess) also made scheduling
// points.
type VarClass uint8

const (
	// ClassData marks an ordinary shared-memory variable.
	ClassData VarClass = iota
	// ClassSync marks a synchronization variable (lock, event, semaphore,
	// interlocked cell, thread-start/exit variable, ...).
	ClassSync
)

// String returns "data" or "sync".
func (c VarClass) String() string {
	if c == ClassSync {
		return "sync"
	}
	return "data"
}

// OpKind classifies the operation a thread performs at a step.
type OpKind uint8

const (
	// OpRead is a read of a shared variable.
	OpRead OpKind = iota
	// OpWrite is a write of a shared variable.
	OpWrite
	// OpAcquire acquires a synchronization resource (lock, semaphore unit).
	OpAcquire
	// OpRelease releases a synchronization resource.
	OpRelease
	// OpWait is a potentially-blocking wait on a synchronization variable.
	OpWait
	// OpSignal signals a synchronization variable (event set, cond signal).
	OpSignal
	// OpYield is a voluntary scheduling point that accesses the thread's own
	// synchronization variable. The thread stays enabled.
	OpYield
	// OpSpawn is the creation of a child thread; it signals the child's
	// thread-start variable.
	OpSpawn
	// OpJoin blocks until the target thread has terminated; it reads the
	// target's thread variable.
	OpJoin
	// OpExit is the final fictitious operation of a thread on its own thread
	// variable. After it commits the thread is dead and never enabled again.
	OpExit
)

var opKindNames = [...]string{
	OpRead:    "read",
	OpWrite:   "write",
	OpAcquire: "acquire",
	OpRelease: "release",
	OpWait:    "wait",
	OpSignal:  "signal",
	OpYield:   "yield",
	OpSpawn:   "spawn",
	OpJoin:    "join",
	OpExit:    "exit",
}

// String returns a short lower-case name for the kind.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// IsWrite reports whether the kind mutates its variable for the purpose of
// data-race classification. Synchronization kinds are all treated as
// dependent with one another regardless, so this matters only for
// ClassData variables.
func (k OpKind) IsWrite() bool {
	switch k {
	case OpWrite, OpAcquire, OpRelease, OpSignal, OpSpawn, OpExit:
		return true
	}
	return false
}

// Blocking reports whether the kind is potentially blocking, i.e. counts
// toward the B statistic of Table 1 (an operation whose enabledness can
// depend on other threads).
func (k OpKind) Blocking() bool {
	switch k {
	case OpAcquire, OpWait, OpJoin:
		return true
	}
	return false
}

// Op describes one shared-variable access: the step granularity of the
// model. Every scheduling point exposes the pending Op of each enabled
// thread so that search strategies and the race detector can inspect it.
type Op struct {
	// Kind is the operation class.
	Kind OpKind
	// Var is the accessed shared variable.
	Var VarID
	// Class says whether Var is a data or synchronization variable.
	Class VarClass
}

// String renders the op as e.g. "acquire sync#3".
func (o Op) String() string {
	return fmt.Sprintf("%s %s#%d", o.Kind, o.Class, o.Var)
}

// Conflicts reports whether two operations are dependent in the
// Mazurkiewicz-trace sense: executing them in either order can reach
// different states. Operations on distinct variables never conflict (each
// step accesses exactly one shared variable, §2). On the same variable,
// synchronization operations always conflict (acquire does not commute
// with acquire or release, wait reorders against signal, and the sync
// order of the happens-before relation is total per variable), while data
// accesses conflict only when at least one of them writes: two reads of
// the same data variable commute.
//
// This is the dependency relation the bounded partial-order-reduction
// layer (core's BPOR) uses to decide which earlier steps a pending
// operation could usefully be reordered against; hb.Dependent is the
// package-hb alias of it.
func (o Op) Conflicts(other Op) bool {
	if o.Var != other.Var {
		return false
	}
	if o.Class == ClassSync || other.Class == ClassSync {
		return true
	}
	return o.Kind.IsWrite() || other.Kind.IsWrite()
}

// Event is one committed step of an execution: thread TID performed Op as
// its Index-th step, the Step-th step of the execution overall (both
// 0-based).
type Event struct {
	// TID is the executing thread.
	TID TID
	// Index is the per-thread step index, starting at 0.
	Index int
	// Step is the global step index, starting at 0.
	Step int
	// Op is the access performed.
	Op Op
}

// String renders the event for traces and test failures.
func (e Event) String() string {
	return fmt.Sprintf("step %d: t%d[%d] %s", e.Step, e.TID, e.Index, e.Op)
}

// Observer receives every committed event of an execution, in execution
// order. Observers run on the executing thread's goroutine but executions
// are single-token, so no additional synchronization is needed.
type Observer interface {
	// OnEvent is called after each step commits.
	OnEvent(ev Event)
}

// ChoiceObserver optionally extends Observer: implementations additionally
// receive every resolved data-choice (Choose) point. A choice is harness
// nondeterminism resolved inline — it is not a shared-variable access and
// never commits an Event — yet the picked value is part of what determines
// the state reached, so observers that fingerprint execution prefixes must
// implement this or conflate executions that differ only in a chosen value.
type ChoiceObserver interface {
	// OnChoice is called after thread t's Choose(n) resolves to v.
	OnChoice(t TID, n, v int)
}
