package sched

import "fmt"

// T is a modeled thread. Program code receives its own *T and performs all
// shared-state operations through it (directly via Access, or through the
// primitives of package conc, which are built on Access).
type T struct {
	rt   *Runtime
	id   TID
	name string
	// etVar is the thread's synchronization variable: signaled by the parent
	// at spawn, accessed by the thread's first and last (exit) operations,
	// and read by Join. It realizes the e_t variable of Appendix A.
	etVar VarID

	spawned       bool // parent committed the spawn op
	dead          bool // exit op committed
	goroutineLive bool // goroutine running, terminal message not yet received

	index    int // per-thread committed step count
	blocking int // per-thread potentially-blocking ops executed

	resume  chan resumeMsg
	pending *pendingOp
}

type pendingOp struct {
	op      Op
	guard   func() bool
	chooseN int
}

// ID returns the thread's identifier.
func (t *T) ID() TID { return t.id }

// Name returns the debug name given at spawn.
func (t *T) Name() string { return t.name }

// Runtime returns the runtime executing this thread, for var-name lookups.
func (t *T) Runtime() *Runtime { return t.rt }

// main is the goroutine body of a modeled thread.
func (t *T) main(fn func(*T)) {
	defer func() {
		r := recover()
		switch v := r.(type) {
		case nil:
		case abortSignal:
			t.rt.events <- tmsg{kind: msgAborted, t: t}
		case assertFailure:
			t.rt.events <- tmsg{kind: msgAssert, t: t, msg: v.msg}
		default:
			t.rt.events <- tmsg{kind: msgPanic, t: t, msg: fmt.Sprint(r), pv: r}
		}
	}()

	// Initial scheduling point: the pending thread-start op was installed by
	// startThread, so the goroutine only waits to be scheduled.
	t.await()

	fn(t)

	// Exit scheduling point: the final fictitious operation on the thread
	// variable. After it commits the thread is dead.
	t.pending = &pendingOp{op: Op{Kind: OpExit, Var: t.etVar, Class: ClassSync}}
	t.rt.events <- tmsg{kind: msgParked, t: t}
	t.await()
	t.dead = true
	t.rt.events <- tmsg{kind: msgExited, t: t}
}

// await blocks until the controller schedules this thread, then commits the
// pending op. It panics with abortSignal if the execution is being torn
// down.
func (t *T) await() {
	m := <-t.resume
	if m.abort {
		panic(abortSignal{})
	}
	p := t.pending
	t.pending = nil
	t.commit(p.op)
}

// commit records one step: it bumps counters, appends to the trace, and
// notifies observers.
func (t *T) commit(op Op) {
	rt := t.rt
	ev := Event{TID: t.id, Index: t.index, Step: rt.steps, Op: op}
	t.index++
	rt.steps++
	// The fictitious thread-start operation (per-thread index 0) never
	// blocks in this model and is excluded from the B statistic.
	if op.Kind.Blocking() && ev.Index > 0 {
		t.blocking++
	}
	if rt.cfg.RecordTrace {
		rt.trace = append(rt.trace, ev)
	}
	for _, o := range rt.cfg.Observers {
		o.OnEvent(ev)
	}
}

// Access performs one shared-variable access, the primitive scheduling
// point. The guard, if non-nil, defines the op's enabledness: the thread is
// scheduled only when guard() is true, and the guard is guaranteed still
// true when Access returns (no other thread runs in between), so the caller
// may then complete the operation's effect atomically. Guards are evaluated
// by the controller between slices and must be pure reads of modeled state.
//
// In ModeSyncOnly, data-variable accesses commit inline without a
// scheduling point (they still reach observers, so the race detector sees
// them); such accesses must not pass a guard.
func (t *T) Access(op Op, guard func() bool) {
	rt := t.rt
	if op.Class == ClassData && rt.cfg.Mode == ModeSyncOnly {
		if guard != nil {
			panic("sched: data-variable access cannot block")
		}
		t.commit(op)
		if rt.steps >= rt.cfg.MaxSteps {
			// A data-access loop that never reaches a sync operation would
			// otherwise spin forever without returning to the controller.
			panic(abortSignal{})
		}
		return
	}
	t.pending = &pendingOp{op: op, guard: guard}
	rt.events <- tmsg{kind: msgParked, t: t}
	t.await()
}

// NewVar registers a fresh shared variable and returns its ID. Allocation
// order is deterministic, so IDs are stable across replays.
func (t *T) NewVar(name string, class VarClass) VarID {
	_ = class // class is carried per-access in Op; names are global
	return t.rt.allocVar(name)
}

// Go spawns a child thread running fn and returns its handle. The spawn is
// itself a step (a signal of the child's thread variable), giving the
// happens-before edge from parent to child required by Appendix A.
func (t *T) Go(name string, fn func(*T)) *T {
	child := t.rt.allocThread(name)
	t.Access(Op{Kind: OpSpawn, Var: child.etVar, Class: ClassSync}, nil)
	child.spawned = true
	t.rt.startThread(child, fn)
	return child
}

// Join blocks until u has terminated. It reads u's thread variable, giving
// the happens-before edge from u's exit to the join.
func (t *T) Join(u *T) {
	t.Access(Op{Kind: OpJoin, Var: u.etVar, Class: ClassSync}, func() bool { return u.dead })
}

// Yield is a voluntary scheduling point; the thread stays enabled, so a
// switch here still counts as a preemption under the formal NP definition.
func (t *T) Yield() {
	t.Access(Op{Kind: OpYield, Var: t.etVar, Class: ClassSync}, nil)
}

// Choose introduces a data-choice point over n alternatives and returns the
// controller's pick. Data choices are harness nondeterminism (inputs,
// timer firings); they are not shared accesses and never cost a preemption.
func (t *T) Choose(n int) int {
	if n <= 1 {
		return 0
	}
	t.pending = &pendingOp{chooseN: n}
	t.rt.events <- tmsg{kind: msgChoose, t: t}
	m := <-t.resume
	if m.abort {
		panic(abortSignal{})
	}
	t.pending = nil
	return m.chosen
}

// ChooseBool is Choose(2) as a boolean.
func (t *T) ChooseBool() bool { return t.Choose(2) == 1 }

// Assert checks a safety property; on failure the execution ends with
// StatusAssertFailed and the formatted message.
func (t *T) Assert(cond bool, format string, args ...any) {
	if !cond {
		panic(assertFailure{fmt.Sprintf(format, args...)})
	}
}

// Fail unconditionally fails the execution with the formatted message.
func (t *T) Fail(format string, args ...any) {
	panic(assertFailure{fmt.Sprintf(format, args...)})
}
