package sched

// PointInfo describes one resolved thread-scheduling decision with enough
// static context — operation kind, variable name, thread names — to
// attribute coverage to a stable location across executions and runs. It
// is the observation unit of the preemption-point coverage atlas (package
// obs/coverage): the paper's guarantee "all executions with at most c
// preemptions have been explored" is a statement about scheduling points,
// and this hook is what makes the set of exercised points observable.
//
// The scheduling point (the "site") is identified by the pending operation
// of the thread that was running when the controller was consulted — the
// potential preemption victim. When that thread is still enabled, choosing
// any other thread preempts it at exactly this operation; when it is
// blocked, the site is the operation it is blocked on. At the first
// scheduling point of an execution, and after the previous thread exited
// (its final operation already committed), there is no victim: the site is
// then the chosen thread's own pending operation and Preemptible is false.
type PointInfo struct {
	// Step is the global index of the step about to be executed.
	Step int
	// SiteThread is the thread whose pending operation defines the site.
	SiteThread TID
	// SiteThreadName is SiteThread's spawn name.
	SiteThreadName string
	// SiteOp is the site's pending operation.
	SiteOp Op
	// SiteVarName is the registration name of SiteOp.Var — the static
	// location label of the site (variable names are stable across
	// executions because allocation order is deterministic).
	SiteVarName string
	// Preemptible reports that the previously running thread was still
	// enabled, so scheduling any other thread is a preemption (Appendix A's
	// NP definition).
	Preemptible bool
	// Chosen is the thread the controller picked.
	Chosen TID
	// ChosenName is Chosen's spawn name.
	ChosenName string
	// Preempted reports that this decision preempted the site: the
	// previously running thread was enabled and a different thread was
	// chosen. Summing Preempted observations over an execution yields
	// exactly its Outcome.Preemptions.
	Preempted bool
}

// PointObserver receives every resolved thread-scheduling decision of an
// execution, after the controller's pick is validated and before the chosen
// thread runs. Observers are invoked from the controller goroutine, one
// point at a time, so no synchronization is needed within one execution.
// Data-choice points are not reported: they are harness nondeterminism, not
// context switches, and can never be preemption sites.
type PointObserver interface {
	// OnPoint is called once per thread-scheduling decision.
	OnPoint(pi PointInfo)
}

// observePoint assembles the PointInfo of the decision just made and hands
// it to the configured observer. Called with rt.prev still holding the
// previously scheduled thread.
func (rt *Runtime) observePoint(info PickInfo, chosen TID, prevEnabled bool) {
	site := chosen
	if info.Prev != NoTID && rt.threads[info.Prev].pending != nil {
		// The previous thread is alive (enabled or blocked); its pending
		// operation is the point everything else is scheduled around. A
		// dead previous thread has no pending op — its exit committed.
		site = info.Prev
	}
	st := rt.threads[site]
	rt.cfg.PointObserver.OnPoint(PointInfo{
		Step:           info.Step,
		SiteThread:     site,
		SiteThreadName: st.name,
		SiteOp:         st.pending.op,
		SiteVarName:    rt.VarName(st.pending.op.Var),
		Preemptible:    prevEnabled,
		Chosen:         chosen,
		ChosenName:     rt.threads[chosen].name,
		Preempted:      prevEnabled && chosen != info.Prev,
	})
}
