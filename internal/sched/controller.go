package sched

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// PickInfo describes a thread-scheduling choice point: the set of enabled
// threads, their pending operations, and whether continuing the previously
// running thread is possible (which determines whether switching away from
// it counts as a preemption, per Appendix A's NP definition).
type PickInfo struct {
	// Step is the global index of the step about to be executed.
	Step int
	// Prev is the thread that executed the previous step (L(a)), or NoTID at
	// the first scheduling point of the execution.
	Prev TID
	// PrevEnabled reports whether Prev is currently enabled. Choosing any
	// thread other than an enabled Prev is a preempting context switch.
	PrevEnabled bool
	// Enabled lists the enabled threads in ascending TID order. It is never
	// empty (deadlocks are detected before the controller is consulted) and
	// must not be mutated or retained.
	Enabled []TID
	// Ops gives the pending operation of each enabled thread, parallel to
	// Enabled.
	Ops []Op
}

// EnabledIndex returns the position of t in Enabled, or -1.
func (pi PickInfo) EnabledIndex(t TID) int {
	for i, u := range pi.Enabled {
		if u == t {
			return i
		}
	}
	return -1
}

// IsEnabled reports whether t is enabled at this point.
func (pi PickInfo) IsEnabled(t TID) bool { return pi.EnabledIndex(t) >= 0 }

// Controller makes the nondeterministic choices of one execution: which
// enabled thread runs next at each scheduling point, and the value of each
// data-choice point. A Controller is used by exactly one Runtime at a time
// and all its methods are invoked from the goroutine that called Run.
type Controller interface {
	// PickThread selects the next thread to run from info.Enabled. Returning
	// ok=false stops the execution immediately (outcome StatusStopped).
	PickThread(info PickInfo) (tid TID, ok bool)
	// PickData resolves a Choose(n) point of thread t; the result must be in
	// [0, n).
	PickData(t TID, n int) int
}

// DecisionKind distinguishes the two decision types of an execution log.
type DecisionKind uint8

const (
	// DecisionThread is a scheduling decision.
	DecisionThread DecisionKind = iota
	// DecisionData is a data-choice decision.
	DecisionData
)

// Decision is one recorded nondeterministic choice. The sequence of
// decisions of an execution fully determines it, so a decision log is a
// replayable schedule.
type Decision struct {
	// Kind selects which field is meaningful.
	Kind DecisionKind
	// Thread is the chosen thread for DecisionThread.
	Thread TID
	// Data is the chosen value for DecisionData.
	Data int
}

// ThreadDecision constructs a scheduling decision.
func ThreadDecision(t TID) Decision { return Decision{Kind: DecisionThread, Thread: t} }

// DataDecision constructs a data-choice decision.
func DataDecision(v int) Decision { return Decision{Kind: DecisionData, Data: v} }

// String renders the decision compactly ("t3" or "d2").
func (d Decision) String() string {
	if d.Kind == DecisionThread {
		return fmt.Sprintf("t%d", d.Thread)
	}
	return fmt.Sprintf("d%d", d.Data)
}

// MarshalJSON renders the decision as its compact string form ("t3",
// "d2"), so a marshaled Schedule is a JSON array of short strings — the
// on-disk decision format of repro bundles (package obs/repro).
func (d Decision) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON parses the compact string form back into a decision.
func (d *Decision) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := parseDecision(s)
	if err != nil {
		return err
	}
	*d = parsed
	return nil
}

// Schedule is a replayable sequence of decisions.
type Schedule []Decision

// Clone returns an independent copy of the schedule.
func (s Schedule) Clone() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	return out
}

// Extend returns a copy of s with d appended; s is never mutated, so
// schedules may be shared between work items.
func (s Schedule) Extend(d Decision) Schedule {
	out := make(Schedule, len(s)+1)
	copy(out, s)
	out[len(s)] = d
	return out
}

// String renders the schedule as "t0 t0 d1 t2 ...".
func (s Schedule) String() string {
	b := make([]byte, 0, 4*len(s))
	for i, d := range s {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, d.String()...)
	}
	return string(b)
}

// ReplayError reports a divergence while replaying a schedule: the program
// under test behaved differently from the recording, which means it has
// nondeterminism outside the scheduler's control (a modeling bug).
type ReplayError struct {
	// Pos is the index of the diverging decision.
	Pos int
	// Want is the recorded decision.
	Want Decision
	// Got describes what the execution offered instead.
	Got string
}

// Error implements error.
func (e *ReplayError) Error() string {
	return fmt.Sprintf("replay divergence at decision %d: recorded %s, execution offered %s", e.Pos, e.Want, e.Got)
}

// ReplayController replays a schedule prefix and then delegates the rest of
// the execution to Tail. It is the bridge between the stateless exploration
// engine (which stores schedules, not states, in its work items) and the
// runtime. Divergence from the recorded schedule panics with *ReplayError;
// Runtime.Run converts that panic into a StatusReplayDiverged outcome.
type ReplayController struct {
	// Prefix is replayed verbatim.
	Prefix Schedule
	// Tail handles decisions beyond the prefix. It must be non-nil.
	Tail Controller

	pos int
}

// PickThread implements Controller.
func (rc *ReplayController) PickThread(info PickInfo) (TID, bool) {
	if rc.pos < len(rc.Prefix) {
		d := rc.Prefix[rc.pos]
		rc.pos++
		if d.Kind != DecisionThread {
			panic(&ReplayError{Pos: rc.pos - 1, Want: d, Got: "a thread scheduling point"})
		}
		if !info.IsEnabled(d.Thread) {
			panic(&ReplayError{Pos: rc.pos - 1, Want: d, Got: fmt.Sprintf("enabled set %v", info.Enabled)})
		}
		return d.Thread, true
	}
	return rc.Tail.PickThread(info)
}

// PickData implements Controller.
func (rc *ReplayController) PickData(t TID, n int) int {
	if rc.pos < len(rc.Prefix) {
		d := rc.Prefix[rc.pos]
		rc.pos++
		if d.Kind != DecisionData {
			panic(&ReplayError{Pos: rc.pos - 1, Want: d, Got: fmt.Sprintf("a data choice of thread t%d", t)})
		}
		if d.Data < 0 || d.Data >= n {
			panic(&ReplayError{Pos: rc.pos - 1, Want: d, Got: fmt.Sprintf("a data choice over %d values", n)})
		}
		return d.Data
	}
	return rc.Tail.PickData(t, n)
}

// Replaying reports whether the controller is still inside its prefix.
func (rc *ReplayController) Replaying() bool { return rc.pos < len(rc.Prefix) }

// FirstEnabled is the trivial controller: it always runs the previously
// running thread if it is still enabled and otherwise the lowest-numbered
// enabled thread, and resolves every data choice to 0. Running a program
// under FirstEnabled yields the canonical zero-preemption execution that the
// paper's §2 argument relies on (any state can be driven to completion
// without further preemptions).
type FirstEnabled struct{}

// PickThread implements Controller.
func (FirstEnabled) PickThread(info PickInfo) (TID, bool) {
	if info.PrevEnabled {
		return info.Prev, true
	}
	return info.Enabled[0], true
}

// PickData implements Controller.
func (FirstEnabled) PickData(TID, int) int { return 0 }

// parseDecision parses one compact decision token ("t3" or "d2").
func parseDecision(f string) (Decision, error) {
	if len(f) < 2 || (f[0] != 't' && f[0] != 'd') {
		return Decision{}, fmt.Errorf("%q is not t<N> or d<N>", f)
	}
	n, err := strconv.Atoi(f[1:])
	if err != nil || n < 0 {
		return Decision{}, fmt.Errorf("bad number in %q", f)
	}
	if f[0] == 't' {
		return ThreadDecision(TID(n)), nil
	}
	return DataDecision(n), nil
}

// ParseSchedule parses the String form of a schedule ("t0 t2 d1 t0 ...")
// back into decisions, for replaying repros passed on a command line or
// stored in a file.
func ParseSchedule(s string) (Schedule, error) {
	var out Schedule
	for i, f := range strings.Fields(s) {
		d, err := parseDecision(f)
		if err != nil {
			return nil, fmt.Errorf("schedule token %d: %v", i, err)
		}
		out = append(out, d)
	}
	return out, nil
}
