package sched_test

import (
	"encoding/json"
	"testing"

	"icb/internal/sched"
)

// TestScheduleJSONRoundTrip pins the on-disk decision format of repro
// bundles: a schedule marshals to a JSON array of compact tokens and
// unmarshals back to the identical decision sequence.
func TestScheduleJSONRoundTrip(t *testing.T) {
	in, err := sched.ParseSchedule("t0 t2 d1 t0 d0 t17")
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := `["t0","t2","d1","t0","d0","t17"]`; string(js) != want {
		t.Fatalf("marshaled schedule = %s, want %s", js, want)
	}
	var out sched.Schedule
	if err := json.Unmarshal(js, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != in.String() {
		t.Fatalf("round trip changed the schedule: %q -> %q", in, out)
	}
}

// TestDecisionUnmarshalRejectsGarbage checks malformed tokens fail loudly
// instead of producing a silently wrong replay.
func TestDecisionUnmarshalRejectsGarbage(t *testing.T) {
	for _, bad := range []string{`"x3"`, `"t"`, `"d-1"`, `"tx"`, `7`} {
		var d sched.Decision
		if err := json.Unmarshal([]byte(bad), &d); err == nil {
			t.Errorf("unmarshal %s succeeded as %v, want error", bad, d)
		}
	}
}
