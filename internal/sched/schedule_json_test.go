package sched_test

import (
	"encoding/json"
	"testing"

	"icb/internal/sched"
)

// TestScheduleJSONRoundTrip pins the on-disk decision format of repro
// bundles: a schedule marshals to a JSON array of compact tokens and
// unmarshals back to the identical decision sequence.
func TestScheduleJSONRoundTrip(t *testing.T) {
	in, err := sched.ParseSchedule("t0 t2 d1 t0 d0 t17")
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := `["t0","t2","d1","t0","d0","t17"]`; string(js) != want {
		t.Fatalf("marshaled schedule = %s, want %s", js, want)
	}
	var out sched.Schedule
	if err := json.Unmarshal(js, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != in.String() {
		t.Fatalf("round trip changed the schedule: %q -> %q", in, out)
	}
}

// TestDecisionUnmarshalRejectsGarbage checks malformed tokens fail loudly
// instead of producing a silently wrong replay.
func TestDecisionUnmarshalRejectsGarbage(t *testing.T) {
	for _, bad := range []string{`"x3"`, `"t"`, `"d-1"`, `"tx"`, `7`} {
		var d sched.Decision
		if err := json.Unmarshal([]byte(bad), &d); err == nil {
			t.Errorf("unmarshal %s succeeded as %v, want error", bad, d)
		}
	}
}

// FuzzScheduleJSON fuzzes the two serialized schedule forms against each
// other: any schedule the text parser accepts must survive the JSON round
// trip unchanged, and any JSON that decodes as a schedule must re-encode
// to a fixed point. Replay correctness depends on this format never
// drifting (bundle.json stores schedules as JSON, reports as text).
func FuzzScheduleJSON(f *testing.F) {
	f.Add("t0 t2 d1 t0 d0 t17")
	f.Add("t0")
	f.Add("d3 d0 t1")
	f.Add("")
	f.Add(`["t0","d0"]`)
	f.Add("t99999999999999999999")
	f.Fuzz(func(t *testing.T, s string) {
		if in, err := sched.ParseSchedule(s); err == nil {
			js, err := json.Marshal(in)
			if err != nil {
				t.Fatalf("marshal %q: %v", in, err)
			}
			var out sched.Schedule
			if err := json.Unmarshal(js, &out); err != nil {
				t.Fatalf("unmarshal %s: %v", js, err)
			}
			if out.String() != in.String() {
				t.Fatalf("round trip changed the schedule: %q -> %q", in, out)
			}
		}
		var s1 sched.Schedule
		if err := json.Unmarshal([]byte(s), &s1); err != nil {
			return
		}
		js, err := json.Marshal(s1)
		if err != nil {
			t.Fatalf("re-marshal of decoded schedule: %v", err)
		}
		var s2 sched.Schedule
		if err := json.Unmarshal(js, &s2); err != nil {
			t.Fatalf("re-unmarshal %s: %v", js, err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("decode/encode not a fixed point: %q -> %q", s1, s2)
		}
	})
}
