package sched

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// lane builds a minimal recorded Outcome for rendering tests: two threads,
// main runs steps 0-1, worker runs step 2 after a switch.
func lane(preempted []int) Outcome {
	return Outcome{
		Status:  StatusTerminated,
		Steps:   3,
		Threads: 2,
		Trace: []Event{
			{TID: 0, Index: 0, Step: 0, Op: Op{Kind: OpAcquire, Var: 0}},
			{TID: 0, Index: 1, Step: 1, Op: Op{Kind: OpRead, Var: 1}},
			{TID: 1, Index: 0, Step: 2, Op: Op{Kind: OpAcquire, Var: 0}},
		},
		VarNames:       []string{"m", "x"},
		ThreadNames:    []string{"main", "worker"},
		PreemptedSteps: preempted,
	}
}

func TestSwimlanePreemptingSeparator(t *testing.T) {
	out := Swimlane(lane([]int{2}))
	if !strings.Contains(out, "├─ preempted ") {
		t.Errorf("preempting switch not marked:\n%s", out)
	}
	if strings.Contains(out, "├─ switch ") {
		t.Errorf("preempting switch rendered as plain switch:\n%s", out)
	}
}

func TestSwimlaneNonpreemptingSeparator(t *testing.T) {
	out := Swimlane(lane(nil))
	if !strings.Contains(out, "├─ switch ") {
		t.Errorf("voluntary switch not marked:\n%s", out)
	}
	if strings.Contains(out, "preempted") {
		t.Errorf("voluntary switch rendered as preemption:\n%s", out)
	}
}

func TestSwimlaneUnnamedThreads(t *testing.T) {
	o := lane(nil)
	o.ThreadNames = []string{"main"} // worker (TID 1) has no recorded name
	out := Swimlane(o)
	if !strings.Contains(out, "t1:t1") {
		t.Errorf("unnamed thread not given a tN fallback header:\n%s", out)
	}
}

func TestSwimlaneEmptyTrace(t *testing.T) {
	out := Swimlane(Outcome{Status: StatusTerminated, Threads: 2})
	if !strings.Contains(out, "no trace recorded") {
		t.Errorf("empty trace did not explain RecordTrace:\n%s", out)
	}
}

func TestSwimlaneRuneSafeTruncation(t *testing.T) {
	o := lane(nil)
	// Long multi-byte names force truncation; a byte-sliced cut would leave
	// invalid UTF-8 in the output.
	o.ThreadNames = []string{strings.Repeat("héllo", 12), strings.Repeat("wörld", 12)}
	o.VarNames = []string{strings.Repeat("mütex", 12), strings.Repeat("داده", 20)}
	out := Swimlane(o)
	if !utf8.ValidString(out) {
		t.Errorf("truncation split a multi-byte rune:\n%q", out)
	}
}

func TestSwimlaneRecordsPreemptedSteps(t *testing.T) {
	// End-to-end: run a program whose bug needs one preemption and check
	// the runtime records the preempted step under RecordTrace.
	write := func(t *T, v VarID) {
		t.Access(Op{Kind: OpWrite, Var: v, Class: ClassSync}, nil)
	}
	prog := func(t *T) {
		x := t.NewVar("x", ClassSync)
		w := t.Go("w", func(t *T) {
			write(t, x)
			write(t, x)
		})
		write(t, x)
		t.Join(w)
	}
	// Schedule: w runs one write, then main preempts it.
	prefix, err := ParseSchedule("t0 t0 t1 t0")
	if err != nil {
		t.Fatal(err)
	}
	out := Run(prog, &ReplayController{
		Prefix: prefix,
		Tail:   FirstEnabled{},
	}, Config{RecordTrace: true})
	if out.Preemptions == 0 {
		t.Fatalf("schedule produced no preemption: %s", out)
	}
	if len(out.PreemptedSteps) != out.Preemptions {
		t.Errorf("PreemptedSteps has %d entries, Preemptions = %d",
			len(out.PreemptedSteps), out.Preemptions)
	}
	if !strings.Contains(Swimlane(out), "preempted") {
		t.Errorf("swimlane of a preempting run has no preempted separator:\n%s", Swimlane(out))
	}
}
