// Package zing is the explicit-state model checker of the reproduction,
// standing in for ZING (§4): it checks compiled ZML models (package zml)
// whose states are first-class values, runs the iterative context-bounding
// algorithm literally as printed in Algorithm 1 — two queues of
// (state, tid) work items, a recursive Search, and the optional visited
// table — and also provides a depth-first search with state caching for
// computing full-state-space denominators (Figure 4).
//
// Unlike the stateless engine of package core, states here are stored and
// revisits are pruned exactly, so cyclic state spaces (spin loops, retry
// loops) are handled, which is the capability the paper attributes to
// ZING.
package zing

import (
	"fmt"
	"time"

	"icb/internal/obs"
	"icb/internal/zml"
)

// BugKind classifies a found defect.
type BugKind uint8

const (
	// BugAssert is a violated assert.
	BugAssert BugKind = iota
	// BugRuntime is a runtime error (index out of range, division by zero,
	// bad mutex usage).
	BugRuntime
	// BugDeadlock means live threads exist but none is enabled.
	BugDeadlock
)

// String names the kind.
func (k BugKind) String() string {
	switch k {
	case BugAssert:
		return "assertion failure"
	case BugRuntime:
		return "runtime error"
	case BugDeadlock:
		return "deadlock"
	}
	return "bug"
}

// Bug is one found defect.
type Bug struct {
	Kind BugKind
	Msg  string
	// Preemptions is the preemption count of the exposing path (the bound
	// at which ICB found it; 0 for DFS, which does not track preemptions).
	Preemptions int
	// Path is the replayable schedule that exposes the bug (ICB only): the
	// sequence of (thread, choice) steps from the initial state.
	Path []PathStep
}

// PathStep is one decision of an explicit-state repro path.
type PathStep struct {
	Tid    int
	Choice int64
}

// PathString renders a path compactly ("t0 t1 t1:c2 ..." where :cN marks a
// data choice).
func PathString(path []PathStep) string {
	var b []byte
	for i, st := range path {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("t%d", st.Tid)...)
		if st.Choice > 0 {
			b = append(b, fmt.Sprintf(":c%d", st.Choice)...)
		}
	}
	return string(b)
}

// ReplayPath re-executes a repro path from the initial state, returning
// the states traversed and the failure it ends in (nil if it no longer
// fails, e.g. for a path ending in deadlock, where the final state is the
// deadlocked one).
func ReplayPath(p *zml.Program, path []PathStep) ([]*zml.State, *zml.Failure) {
	s, fail := p.NewState()
	if fail != nil {
		return nil, fail
	}
	states := []*zml.State{s}
	for _, st := range path {
		s = s.Clone()
		if fail := p.Step(s, st.Tid, st.Choice); fail != nil {
			return states, fail
		}
		states = append(states, s)
	}
	return states, nil
}

// String renders a summary.
func (b *Bug) String() string {
	return fmt.Sprintf("%s (preemptions=%d): %s", b.Kind, b.Preemptions, b.Msg)
}

// BoundCoverage is one per-bound coverage sample (Figure 4).
type BoundCoverage struct {
	Bound  int
	States int
	Items  int
}

// Options configures a check.
type Options struct {
	// MaxPreemptions bounds the ICB search (negative: run to exhaustion).
	MaxPreemptions int
	// MaxItems caps the number of work items processed (0 = unlimited).
	MaxItems int
	// StopOnFirstBug halts at the first defect.
	StopOnFirstBug bool
	// NoTable disables the visited-work-item table. Only safe for acyclic
	// state spaces; the table is on by default, as in ZING.
	NoTable bool
	// Sink receives the structured event stream of the check (package obs).
	// The explicit-state checker's execution unit is one work item, so
	// ExecutionDone fires once per item. nil disables emission.
	Sink obs.Sink
}

// Result summarizes a check.
type Result struct {
	// States is the number of distinct visited states.
	States int
	// Items is the number of work items executed.
	Items int
	// Bugs lists found defects in discovery order.
	Bugs []Bug
	// BoundCompleted is the highest fully-explored preemption bound (-1 if
	// none; ICB only).
	BoundCompleted int
	// BoundCurve is the per-bound cumulative coverage (ICB only).
	BoundCurve []BoundCoverage
	// Exhausted reports a complete search.
	Exhausted bool
	// MaxSteps is the maximum path depth reached (the K statistic of
	// Table 1), MaxBlocking the maximum number of potentially-blocking
	// steps along a path (B), and MaxPreemptions the maximum preemption
	// count of any explored work item (c).
	MaxSteps       int
	MaxBlocking    int
	MaxPreemptions int
	// Duration is the total wall-clock time of the check.
	Duration time.Duration
}

// FirstBug returns the first bug, or nil.
func (r *Result) FirstBug() *Bug {
	if len(r.Bugs) == 0 {
		return nil
	}
	return &r.Bugs[0]
}

// workItem is the WorkItem of Algorithm 1, extended with the data choice
// needed when the thread is parked at a choose, and with its preemption
// count for reporting.
type workItem struct {
	state  *zml.State
	tid    int
	choice int64
	np     int
	depth  int        // steps along the path to this item
	blocks int        // potentially-blocking steps along the path
	path   []PathStep // decisions leading to this item's state
}

// extend returns path + one step, never sharing the backing array.
func extend(path []PathStep, st PathStep) []PathStep {
	out := make([]PathStep, len(path)+1)
	copy(out, path)
	out[len(path)] = st
	return out
}

// key is the table key of a work item under a program (canonical heap).
func itemKey(p *zml.Program, w workItem) string {
	return fmt.Sprintf("%d.%d.", w.tid, w.choice) + p.StateKey(w.state)
}

// checker carries the search state.
type checker struct {
	prog    *zml.Program
	opt     Options
	visited map[string]struct{} // distinct states (coverage)
	table   map[string]struct{} // work-item table (Algorithm 1's table)
	next    []workItem          // nextWorkQueue
	res     Result
	stop    bool
}

// CheckICB model-checks the program with iterative context bounding
// (Algorithm 1).
func CheckICB(p *zml.Program, opt Options) (res Result) {
	start := time.Now()
	c := &checker{
		prog:    p,
		opt:     opt,
		visited: make(map[string]struct{}),
	}
	defer func() {
		res.Duration = time.Since(start)
		if opt.Sink != nil {
			opt.Sink.SearchDone(obs.SearchEvent{
				Strategy:       "zing-icb",
				Executions:     res.Items,
				States:         res.States,
				Bugs:           len(res.Bugs),
				BoundCompleted: res.BoundCompleted,
				Exhausted:      res.Exhausted,
				DurationNS:     time.Since(start).Nanoseconds(),
			})
		}
	}()
	if !opt.NoTable {
		c.table = make(map[string]struct{})
	}
	c.res.BoundCompleted = -1

	s0, fail := p.NewState()
	if fail != nil {
		c.fail(fail, 0, nil)
		return c.res
	}
	c.countState(s0)

	// Lines 6–8: one work item per thread enabled in the initial state
	// (one per choice value for a thread parked at a choose).
	var workQueue []workItem
	for tid := range s0.Threads {
		if !p.Enabled(s0, tid) {
			continue
		}
		if n := p.PendingChoose(s0, tid); n > 0 {
			for v := int64(0); v < n; v++ {
				workQueue = append(workQueue, workItem{state: s0, tid: tid, choice: v})
			}
			continue
		}
		workQueue = append(workQueue, workItem{state: s0, tid: tid})
	}

	// Lines 9–21: drain the current bound, then move to the next.
	currBound := 0
	for {
		boundStart := time.Now()
		if opt.Sink != nil {
			opt.Sink.BoundStart(obs.BoundEvent{
				Bound:      currBound,
				Queue:      len(workQueue),
				Executions: c.res.Items,
				States:     len(c.visited),
			})
		}
		for i := 0; i < len(workQueue) && !c.stop; i++ {
			c.search(workQueue[i])
		}
		if c.stop {
			return c.res
		}
		c.res.BoundCompleted = currBound
		c.res.BoundCurve = append(c.res.BoundCurve, BoundCoverage{
			Bound:  currBound,
			States: len(c.visited),
			Items:  c.res.Items,
		})
		if opt.Sink != nil {
			opt.Sink.BoundComplete(obs.BoundEvent{
				Bound:      currBound,
				Frontier:   len(c.next),
				Executions: c.res.Items,
				States:     len(c.visited),
				DurationNS: time.Since(boundStart).Nanoseconds(),
			})
		}
		if len(c.next) == 0 {
			c.res.Exhausted = true
			return c.res
		}
		if opt.MaxPreemptions >= 0 && currBound >= opt.MaxPreemptions {
			return c.res
		}
		currBound++
		workQueue = c.next
		c.next = nil
	}
}

// search is the Search procedure of Algorithm 1 (lines 22–39), extended
// with choose expansion.
func (c *checker) search(w workItem) {
	if c.stop {
		return
	}
	if c.table != nil {
		k := itemKey(c.prog, w)
		if _, seen := c.table[k]; seen {
			return
		}
		c.table[k] = struct{}{}
	}
	if c.opt.MaxItems > 0 && c.res.Items >= c.opt.MaxItems {
		c.stop = true
		return
	}
	c.res.Items++
	if c.opt.Sink != nil {
		c.opt.Sink.ExecutionDone(obs.ExecutionEvent{
			Execution:   c.res.Items,
			Status:      "item",
			Steps:       w.depth,
			Preemptions: w.np,
			States:      len(c.visited),
			Bound:       w.np,
			Frontier:    len(c.next),
		})
	}

	// Line 25: s := w.state.Execute(w.tid).
	blocking := c.prog.PendingBlocking(w.state, w.tid)
	s := w.state.Clone()
	if fail := c.prog.Step(s, w.tid, w.choice); fail != nil {
		c.fail(fail, w.np, extend(w.path, PathStep{Tid: w.tid, Choice: w.choice}))
		return
	}
	c.countState(s)
	newPath := extend(w.path, PathStep{Tid: w.tid, Choice: w.choice})
	depth, blocks := w.depth+1, w.blocks
	if blocking {
		blocks++
	}
	if depth > c.res.MaxSteps {
		c.res.MaxSteps = depth
	}
	if blocks > c.res.MaxBlocking {
		c.res.MaxBlocking = blocks
	}
	if w.np > c.res.MaxPreemptions {
		c.res.MaxPreemptions = w.np
	}

	// A thread parked at a choose keeps running: expand the data choice
	// within the current bound (it is not a context switch).
	if n := c.prog.PendingChoose(s, w.tid); n > 0 {
		for v := int64(0); v < n; v++ {
			c.search(workItem{state: s, tid: w.tid, choice: v, np: w.np, depth: depth, blocks: blocks, path: newPath})
		}
		return
	}

	if s.Alive() == 0 {
		// Terminating execution.
		return
	}
	if c.prog.Deadlocked(s) {
		c.bug(Bug{Kind: BugDeadlock, Msg: c.prog.DeadlockMessage(s), Preemptions: w.np, Path: newPath})
		return
	}

	if c.prog.Enabled(s, w.tid) {
		// Lines 26–32: continue w.tid in this bound; any other enabled
		// thread costs a preemption.
		c.search(workItem{state: s, tid: w.tid, np: w.np, depth: depth, blocks: blocks, path: newPath})
		for tid := range s.Threads {
			if tid != w.tid && c.prog.Enabled(s, tid) {
				c.next = append(c.next, workItem{state: s, tid: tid, np: w.np + 1, depth: depth, blocks: blocks, path: newPath})
			}
		}
		return
	}
	// Lines 33–37: w.tid yielded; every enabled thread is free.
	for tid := range s.Threads {
		if c.prog.Enabled(s, tid) {
			c.search(workItem{state: s, tid: tid, np: w.np, depth: depth, blocks: blocks, path: newPath})
		}
	}
}

func (c *checker) countState(s *zml.State) {
	c.visited[c.prog.StateKey(s)] = struct{}{}
	c.res.States = len(c.visited)
}

func (c *checker) fail(f *zml.Failure, np int, path []PathStep) {
	kind := BugRuntime
	if f.Kind == zml.FailAssert {
		kind = BugAssert
	}
	c.bug(Bug{Kind: kind, Msg: f.Error(), Preemptions: np, Path: path})
}

func (c *checker) bug(b Bug) {
	c.res.Bugs = append(c.res.Bugs, b)
	if c.opt.Sink != nil {
		c.opt.Sink.BugFound(obs.BugEvent{
			Kind:        b.Kind.String(),
			Message:     b.Msg,
			Preemptions: b.Preemptions,
			Execution:   c.res.Items,
		})
	}
	if c.opt.StopOnFirstBug {
		c.stop = true
	}
}

// CheckDFS explores the full state space depth-first with state caching,
// ignoring preemption structure — the baseline denominator for Figure 4.
func CheckDFS(p *zml.Program, opt Options) (res Result) {
	start := time.Now()
	res = Result{BoundCompleted: -1}
	defer func() {
		res.Duration = time.Since(start)
		if opt.Sink != nil {
			opt.Sink.SearchDone(obs.SearchEvent{
				Strategy:       "zing-dfs",
				Executions:     res.Items,
				States:         res.States,
				Bugs:           len(res.Bugs),
				BoundCompleted: res.BoundCompleted,
				Exhausted:      res.Exhausted,
				DurationNS:     time.Since(start).Nanoseconds(),
			})
		}
	}()
	s0, fail := p.NewState()
	if fail != nil {
		res.Bugs = append(res.Bugs, Bug{Kind: failKind(fail), Msg: fail.Error()})
		return res
	}
	visited := map[string]struct{}{p.StateKey(s0): {}}

	type frame struct {
		state  *zml.State
		tid    int
		choice int64
	}
	var stack []frame
	expand := func(s *zml.State) bool {
		any := false
		for tid := range s.Threads {
			if !p.Enabled(s, tid) {
				continue
			}
			any = true
			if n := p.PendingChoose(s, tid); n > 0 {
				for v := int64(0); v < n; v++ {
					stack = append(stack, frame{state: s, tid: tid, choice: v})
				}
				continue
			}
			stack = append(stack, frame{state: s, tid: tid})
		}
		return any
	}
	if live := s0.Alive(); live > 0 && !expand(s0) {
		res.Bugs = append(res.Bugs, Bug{Kind: BugDeadlock, Msg: p.DeadlockMessage(s0)})
		if opt.StopOnFirstBug {
			return res
		}
	}
	for len(stack) > 0 {
		if opt.MaxItems > 0 && res.Items >= opt.MaxItems {
			return res
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Items++
		s := f.state.Clone()
		if fail := p.Step(s, f.tid, f.choice); fail != nil {
			res.Bugs = append(res.Bugs, Bug{Kind: failKind(fail), Msg: fail.Error()})
			if opt.StopOnFirstBug {
				return res
			}
			continue
		}
		k := p.StateKey(s)
		if _, seen := visited[k]; seen {
			continue
		}
		visited[k] = struct{}{}
		res.States = len(visited)
		if s.Alive() == 0 {
			continue
		}
		if !expand(s) {
			res.Bugs = append(res.Bugs, Bug{Kind: BugDeadlock, Msg: p.DeadlockMessage(s)})
			if opt.StopOnFirstBug {
				return res
			}
		}
	}
	res.States = len(visited)
	res.Exhausted = true
	return res
}

func failKind(f *zml.Failure) BugKind {
	if f.Kind == zml.FailAssert {
		return BugAssert
	}
	return BugRuntime
}
