package zing

import (
	"strings"
	"testing"

	"icb/internal/zml"
)

func compile(t *testing.T, src string) *zml.Program {
	t.Helper()
	p, err := zml.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// peterson is Peterson's mutual-exclusion algorithm: correct, and its
// state space is cyclic-free but contention-heavy.
const peterson = `
	global bool flag0; global bool flag1;
	global int turn;
	global int incrit;
	proc p(int me) {
		int other = 1 - me;
		if (me == 0) { flag0 = true; } else { flag1 = true; }
		turn = other;
		if (me == 0) {
			wait(!flag1 || turn == 0);
		} else {
			wait(!flag0 || turn == 1);
		}
		incrit = incrit + 1;
		assert(incrit == 1);
		incrit = incrit - 1;
		if (me == 0) { flag0 = false; } else { flag1 = false; }
	}
	proc main() {
		spawn p(0);
		spawn p(1);
	}
`

// petersonBroken omits the turn variable (pure flags), which deadlocks or
// violates mutual exclusion depending on the variant.
const mutexRace = `
	global int incrit;
	proc p() {
		incrit = incrit + 1;
		assert(incrit == 1);
		incrit = incrit - 1;
	}
	proc main() {
		spawn p();
		spawn p();
	}
`

func TestPetersonCorrect(t *testing.T) {
	res := CheckICB(compile(t, peterson), Options{MaxPreemptions: -1})
	if len(res.Bugs) != 0 {
		t.Fatalf("peterson has bugs: %v", res.Bugs[0].String())
	}
	if !res.Exhausted {
		t.Fatal("search not exhausted")
	}
	if res.States < 10 {
		t.Fatalf("suspiciously few states: %d", res.States)
	}
}

func TestUnprotectedCounterFoundAtBoundOne(t *testing.T) {
	// incrit = incrit+1 compiles to load, store: the violation needs one
	// preemption between them.
	res := CheckICB(compile(t, mutexRace), Options{MaxPreemptions: -1, StopOnFirstBug: true})
	bug := res.FirstBug()
	if bug == nil {
		t.Fatal("no bug found")
	}
	if bug.Kind != BugAssert {
		t.Fatalf("kind = %v: %s", bug.Kind, bug.Msg)
	}
	if bug.Preemptions != 1 {
		t.Fatalf("found at %d preemptions, want 1", bug.Preemptions)
	}

	// And a complete bound-0 search is clean.
	res = CheckICB(compile(t, mutexRace), Options{MaxPreemptions: 0})
	if len(res.Bugs) != 0 {
		t.Fatalf("bound-0 found: %v", res.Bugs[0].String())
	}
	if res.BoundCompleted != 0 {
		t.Fatal("bound 0 not completed")
	}
}

func TestAtomicCounterIsSafe(t *testing.T) {
	src := strings.Replace(mutexRace,
		"incrit = incrit + 1;\n\t\tassert(incrit == 1);\n\t\tincrit = incrit - 1;",
		"atomic { incrit = incrit + 1; assert(incrit == 1); incrit = incrit - 1; }", 1)
	res := CheckICB(compile(t, src), Options{MaxPreemptions: -1})
	if len(res.Bugs) != 0 {
		t.Fatalf("atomic counter has bugs: %v", res.Bugs[0].String())
	}
	if !res.Exhausted {
		t.Fatal("not exhausted")
	}
}

func TestMutexCounterIsSafe(t *testing.T) {
	src := `
		global mutex m;
		global int incrit;
		proc p() {
			acquire(m);
			incrit = incrit + 1;
			assert(incrit == 1);
			incrit = incrit - 1;
			release(m);
		}
		proc main() { spawn p(); spawn p(); }
	`
	res := CheckICB(compile(t, src), Options{MaxPreemptions: -1})
	if len(res.Bugs) != 0 {
		t.Fatalf("mutex counter has bugs: %v", res.Bugs[0].String())
	}
}

func TestDeadlockDetected(t *testing.T) {
	src := `
		global mutex a; global mutex b;
		proc one() { acquire(a); acquire(b); release(b); release(a); }
		proc two() { acquire(b); acquire(a); release(a); release(b); }
		proc main() { spawn one(); spawn two(); }
	`
	res := CheckICB(compile(t, src), Options{MaxPreemptions: -1, StopOnFirstBug: true})
	bug := res.FirstBug()
	if bug == nil || bug.Kind != BugDeadlock {
		t.Fatalf("got %v", res.Bugs)
	}
	if bug.Preemptions != 1 {
		t.Fatalf("deadlock at %d preemptions, want 1", bug.Preemptions)
	}
}

func TestCyclicStateSpaceTerminates(t *testing.T) {
	// A spin-loop consumer: the state space has cycles, which only the
	// table makes finite — the capability the paper attributes to ZING.
	src := `
		global int flagv;
		proc waiter() {
			while (flagv == 0) { yield; }
			assert(flagv == 7);
		}
		proc main() {
			spawn waiter();
			flagv = 7;
		}
	`
	res := CheckICB(compile(t, src), Options{MaxPreemptions: -1})
	if len(res.Bugs) != 0 {
		t.Fatalf("bugs: %v", res.Bugs[0].String())
	}
	if !res.Exhausted {
		t.Fatal("not exhausted")
	}
}

func TestDFSMatchesICBStates(t *testing.T) {
	for _, src := range []string{peterson, mutexRace} {
		icb := CheckICB(compile(t, src), Options{MaxPreemptions: -1})
		dfs := CheckDFS(compile(t, src), Options{})
		if !dfs.Exhausted {
			t.Fatal("DFS not exhausted")
		}
		// Both visit the same reachable graph; ICB stops exploring along
		// failing paths exactly as DFS skips them, so state counts match.
		if icb.States != dfs.States {
			t.Fatalf("states: icb=%d dfs=%d", icb.States, dfs.States)
		}
	}
}

func TestChooseExpansion(t *testing.T) {
	src := `
		global int hit[3];
		proc main() {
			int v = choose(3);
			hit[v] = 1;
			assert(hit[1] == 0);  // fails exactly when v == 1
		}
	`
	res := CheckICB(compile(t, src), Options{MaxPreemptions: -1})
	if len(res.Bugs) != 1 {
		t.Fatalf("bugs = %v, want exactly the v==1 branch", res.Bugs)
	}
	if res.Bugs[0].Preemptions != 0 {
		t.Fatalf("choose branch costed preemptions: %d", res.Bugs[0].Preemptions)
	}
}

func TestBoundCurveMonotone(t *testing.T) {
	res := CheckICB(compile(t, peterson), Options{MaxPreemptions: -1})
	if len(res.BoundCurve) == 0 {
		t.Fatal("no curve")
	}
	for i := 1; i < len(res.BoundCurve); i++ {
		if res.BoundCurve[i].States < res.BoundCurve[i-1].States {
			t.Fatalf("coverage not monotone: %v", res.BoundCurve)
		}
	}
	last := res.BoundCurve[len(res.BoundCurve)-1]
	if last.States != res.States {
		t.Fatalf("final curve point %d != total %d", last.States, res.States)
	}
}

func TestMaxItemsBudget(t *testing.T) {
	res := CheckICB(compile(t, peterson), Options{MaxPreemptions: -1, MaxItems: 5})
	if res.Items > 5 {
		t.Fatalf("items = %d, want <= 5", res.Items)
	}
	if res.Exhausted {
		t.Fatal("budget-cut search claims exhaustion")
	}
}

func TestRuntimeErrorSurfaces(t *testing.T) {
	src := `
		global int a[2];
		global int i = 5;
		proc main() { a[i] = 1; }
	`
	res := CheckICB(compile(t, src), Options{MaxPreemptions: -1, StopOnFirstBug: true})
	bug := res.FirstBug()
	if bug == nil || bug.Kind != BugRuntime {
		t.Fatalf("got %v", res.Bugs)
	}
}

func TestBuiltinModels(t *testing.T) {
	models := Models()
	for name := range models {
		t.Run(name, func(t *testing.T) {
			p := compile(t, models[name])
			res := CheckICB(p, Options{MaxPreemptions: -1, StopOnFirstBug: true})
			switch name {
			case "peterson", "philosophers-ordered", "boundedbuffer", "linkedstack":
				if len(res.Bugs) != 0 {
					t.Fatalf("correct model has bugs: %v", res.Bugs[0].String())
				}
				if !res.Exhausted {
					t.Fatal("not exhausted")
				}
			case "philosophers":
				bug := res.FirstBug()
				if bug == nil || bug.Kind != BugDeadlock {
					t.Fatalf("expected deadlock, got %v", res.Bugs)
				}
				if bug.Preemptions != 1 {
					t.Fatalf("philosophers deadlock at %d preemptions, want 1", bug.Preemptions)
				}
			default:
				t.Fatalf("unknown model %q in test", name)
			}
		})
	}
}

func TestPhilosophersDeadlockNotBelowBound1(t *testing.T) {
	p := compile(t, Models()["philosophers"])
	res := CheckICB(p, Options{MaxPreemptions: 0})
	if len(res.Bugs) != 0 {
		t.Fatalf("deadlock below bound 1: %v", res.Bugs[0].String())
	}
	if res.BoundCompleted != 0 {
		t.Fatal("bound 0 not completed")
	}
}

func TestBugPathReplays(t *testing.T) {
	// The repro path attached to a bug re-executes to the same failure.
	p := compile(t, mutexRace)
	res := CheckICB(p, Options{MaxPreemptions: -1, StopOnFirstBug: true})
	bug := res.FirstBug()
	if bug == nil {
		t.Fatal("no bug")
	}
	if len(bug.Path) == 0 {
		t.Fatal("bug has no repro path")
	}
	states, fail := ReplayPath(p, bug.Path)
	if fail == nil {
		t.Fatalf("replay did not fail (states=%d)", len(states))
	}
	if fail.Kind != zml.FailAssert {
		t.Fatalf("replay failed differently: %v", fail)
	}
	if PathString(bug.Path) == "" {
		t.Fatal("empty path string")
	}
}

func TestDeadlockPathReplays(t *testing.T) {
	p := compile(t, Models()["philosophers"])
	res := CheckICB(p, Options{MaxPreemptions: -1, StopOnFirstBug: true})
	bug := res.FirstBug()
	if bug == nil || bug.Kind != BugDeadlock {
		t.Fatal("no deadlock")
	}
	states, fail := ReplayPath(p, bug.Path)
	if fail != nil {
		t.Fatalf("deadlock path hit a failure: %v", fail)
	}
	final := states[len(states)-1]
	if !p.Deadlocked(final) {
		t.Fatal("replayed path does not end in a deadlocked state")
	}
}

// linkedStack is a lock-protected shared stack over heap records: the
// first model to exercise references and heap canonicalization end to end
// in the checker.
const linkedStack = `
record Node {
	int val;
	Node next;
}
global Node top;
global mutex m;
global int popped;
global int pushers;
global int popperDone;

proc push(int v) {
	Node n = new Node;
	n.val = v;
	acquire(m);
	n.next = top;
	top = n;
	pushers = pushers + 1;
	release(m);
}

proc popper() {
	wait(pushers == 2);
	acquire(m);
	while (top != null) {
		popped = popped + top.val;
		top = top.next;
	}
	release(m);
	popperDone = 1;
}

proc main() {
	spawn push(10);
	spawn push(20);
	spawn popper();
	wait(popperDone == 1);
	assert(popped == 30);
	assert(top == null);
}
`

func TestLinkedStackExhaustive(t *testing.T) {
	res := CheckICB(compile(t, linkedStack), Options{MaxPreemptions: -1})
	if len(res.Bugs) != 0 {
		t.Fatalf("linked stack has bugs: %v", res.Bugs[0].String())
	}
	if !res.Exhausted {
		t.Fatal("not exhausted")
	}
}

func TestLinkedStackSymmetryReduction(t *testing.T) {
	// The two pushers allocate in schedule-dependent order; without heap
	// canonicalization the final states would split by allocation order.
	// DFS over the canonical space must agree with ICB and stay small.
	icb := CheckICB(compile(t, linkedStack), Options{MaxPreemptions: -1})
	dfs := CheckDFS(compile(t, linkedStack), Options{})
	if !dfs.Exhausted {
		t.Fatal("DFS not exhausted")
	}
	if icb.States != dfs.States {
		t.Fatalf("states: icb=%d dfs=%d", icb.States, dfs.States)
	}
}

// lockFreePush is a Treiber push WITHOUT the lock: the unprotected
// read-modify-write of top loses an update; the checker finds it at
// bound 1.
const lockFreePushBroken = `
record Node {
	int val;
	Node next;
}
global Node top;
global int done;

proc push(int v) {
	Node n = new Node;
	n.val = v;
	n.next = top;   // read top
	top = n;        // write top: lost update window between the two
	done = done + 1;
}

proc main() {
	spawn push(1);
	spawn push(2);
	wait(done == 2);
	int count = 0;
	Node cur = top;
	while (cur != null) {
		count = count + 1;
		cur = cur.next;
	}
	assert(count == 2);
}
`

func TestBrokenTreiberPushFoundAtBoundOne(t *testing.T) {
	// The unprotected top/done updates lose a write with one preemption;
	// the first manifestation is a deadlock (the lost done increment
	// starves main's wait).
	res := CheckICB(compile(t, lockFreePushBroken), Options{MaxPreemptions: -1, StopOnFirstBug: true})
	bug := res.FirstBug()
	if bug == nil {
		t.Fatal("lost-update push not found")
	}
	if bug.Preemptions != 1 {
		t.Fatalf("found at %d preemptions, want 1", bug.Preemptions)
	}
	// The repro path replays to the same defect: an assert failure, or a
	// final deadlocked state for the starvation manifestation.
	p := compile(t, lockFreePushBroken)
	states, fail := ReplayPath(p, bug.Path)
	if fail == nil && !p.Deadlocked(states[len(states)-1]) {
		t.Fatal("repro path neither fails nor deadlocks")
	}
}
