package zing

// Models returns the built-in example ZML models, usable from the zingi
// command (-model <name>) and exercised by the package tests. They are
// classics with well-understood verdicts, so they double as end-to-end
// oracles for the checker:
//
//   - peterson: correct two-thread mutual exclusion;
//   - philosophers: three dining philosophers picking up the left fork
//     first — deadlocks, minimally with 1 preemption
//     (a blocked acquisition chain supplies the other switches for free);
//   - philosophers-ordered: the resource-ordering fix — deadlock-free;
//   - boundedbuffer: a producer/consumer ring buffer with wait-based flow
//     control — correct;
//   - linkedstack: a lock-protected linked stack over heap records,
//     exercising references and heap-symmetry reduction — correct.
func Models() map[string]string {
	return map[string]string{
		"peterson": `
// Peterson's mutual-exclusion algorithm, two threads.
global bool flag0; global bool flag1;
global int turn;
global int incrit;
proc p(int me) {
	int other = 1 - me;
	if (me == 0) { flag0 = true; } else { flag1 = true; }
	turn = other;
	if (me == 0) {
		wait(!flag1 || turn == 0);
	} else {
		wait(!flag0 || turn == 1);
	}
	incrit = incrit + 1;
	assert(incrit == 1);
	incrit = incrit - 1;
	if (me == 0) { flag0 = false; } else { flag1 = false; }
}
proc main() {
	spawn p(0);
	spawn p(1);
}
`,
		"philosophers": `
// Three dining philosophers, left fork first: deadlocks when every
// philosopher holds exactly one fork.
global mutex fork[3];
proc phil(int i) {
	acquire(fork[i]);
	acquire(fork[(i + 1) % 3]);
	// eat
	release(fork[(i + 1) % 3]);
	release(fork[i]);
}
proc main() {
	spawn phil(0);
	spawn phil(1);
	spawn phil(2);
}
`,
		"philosophers-ordered": `
// Dining philosophers with a total order on forks: deadlock-free.
global mutex fork[3];
proc phil(int i) {
	int lo = i;
	int hi = (i + 1) % 3;
	if (lo > hi) {
		int tmp = lo;
		lo = hi;
		hi = tmp;
	}
	acquire(fork[lo]);
	acquire(fork[hi]);
	release(fork[hi]);
	release(fork[lo]);
}
proc main() {
	spawn phil(0);
	spawn phil(1);
	spawn phil(2);
}
`,
		"boundedbuffer": `
// Producer/consumer over a two-slot ring buffer with wait-based flow
// control.
global int buf[2];
global int head;     // next slot to consume
global int count;    // filled slots
global mutex m;
global int consumed;
proc producer(int n) {
	int i = 0;
	while (i < n) {
		wait(count < 2);
		acquire(m);
		if (count < 2) {
			buf[(head + count) % 2] = i + 1;
			count = count + 1;
			i = i + 1;
		}
		release(m);
	}
}
proc consumer(int n) {
	int i = 0;
	while (i < n) {
		wait(count > 0);
		acquire(m);
		if (count > 0) {
			assert(buf[head] > 0);
			buf[head] = 0;
			head = (head + 1) % 2;
			count = count - 1;
			consumed = consumed + 1;
			i = i + 1;
		}
		release(m);
	}
}
proc main() {
	spawn producer(3);
	spawn consumer(3);
	wait(consumed == 3);
	assert(count == 0);
}
`,
		"linkedstack": `
// Lock-protected linked stack over heap records.
record Node {
	int val;
	Node next;
}
global Node top;
global mutex m;
global int popped;
global int pushers;
global int popperDone;

proc push(int v) {
	Node n = new Node;
	n.val = v;
	acquire(m);
	n.next = top;
	top = n;
	pushers = pushers + 1;
	release(m);
}

proc popper() {
	wait(pushers == 2);
	acquire(m);
	while (top != null) {
		popped = popped + top.val;
		top = top.next;
	}
	release(m);
	popperDone = 1;
}

proc main() {
	spawn push(10);
	spawn push(20);
	spawn popper();
	wait(popperDone == 1);
	assert(popped == 30);
	assert(top == null);
}
`,
	}
}
