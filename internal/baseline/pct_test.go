package baseline_test

import (
	"strings"
	"testing"

	"icb/internal/baseline"
	"icb/internal/conc"
	"icb/internal/core"
	"icb/internal/sched"
)

// window fails when w1 is preempted between its two stores — a depth-2
// bug in PCT terms.
func window(t *sched.T) {
	a := conc.NewAtomicInt(t, "a", 0)
	w := t.Go("w", func(t *sched.T) {
		a.Store(t, 1)
		a.Store(t, 0)
	})
	t.Assert(a.Load(t) == 0, "transient observed")
	t.Join(w)
}

func TestPCTFindsDepth2Bug(t *testing.T) {
	res := core.Explore(window, baseline.PCT{Depth: 2, MaxSteps: 16, Seed: 11},
		core.Options{MaxExecutions: 500, StopOnFirstBug: true})
	if res.FirstBug() == nil {
		t.Fatal("PCT missed a depth-2 bug in 500 executions")
	}
}

func TestPCTReproducible(t *testing.T) {
	opt := core.Options{MaxExecutions: 100, StopOnFirstBug: true}
	a := core.Explore(window, baseline.PCT{Depth: 2, MaxSteps: 16, Seed: 3}, opt)
	b := core.Explore(window, baseline.PCT{Depth: 2, MaxSteps: 16, Seed: 3}, opt)
	if (a.FirstBug() == nil) != (b.FirstBug() == nil) {
		t.Fatal("same seed, different verdict")
	}
	if a.Executions != b.Executions || a.States != b.States {
		t.Fatalf("same seed, different exploration: %d/%d vs %d/%d",
			a.Executions, a.States, b.Executions, b.States)
	}
}

func TestPCTRespectsBudget(t *testing.T) {
	res := core.Explore(window, baseline.PCT{Depth: 1, MaxSteps: 16, Seed: 1},
		core.Options{MaxExecutions: 7})
	if res.Executions != 7 {
		t.Fatalf("executions = %d, want 7", res.Executions)
	}
}

func TestPCTDepth1IsPriorityRoundRobin(t *testing.T) {
	// With no change points, each execution follows fixed priorities; the
	// depth-2 window bug needs a demotion, so depth-1 PCT cannot hit the
	// transient... unless priorities order the assert between the stores —
	// impossible here because w runs its two stores back-to-back under a
	// fixed priority. A small sanity check of the priority mechanism.
	res := core.Explore(window, baseline.PCT{Depth: 1, MaxSteps: 16, Seed: 5},
		core.Options{MaxExecutions: 300, StopOnFirstBug: true})
	if res.FirstBug() != nil {
		t.Fatalf("depth-1 PCT found a depth-2 bug: %v", res.FirstBug())
	}
}

func TestSwimlaneRendering(t *testing.T) {
	out := sched.Run(window, sched.FirstEnabled{}, sched.Config{RecordTrace: true})
	s := sched.Swimlane(out)
	for _, want := range []string{"t0:main", "t1:w", "switch", "outcome:", "write a"} {
		if !strings.Contains(s, want) {
			t.Fatalf("swimlane missing %q:\n%s", want, s)
		}
	}
	// Without a trace, a hint is returned instead of garbage.
	empty := sched.Swimlane(sched.Outcome{})
	if !strings.Contains(empty, "RecordTrace") {
		t.Fatalf("empty swimlane: %q", empty)
	}
}
