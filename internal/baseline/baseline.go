// Package baseline implements the search strategies the paper compares
// iterative context bounding against (§4, Figures 2, 5 and 6):
//
//   - DFS: unbounded depth-first search over the scheduling tree;
//   - DFS{Depth: N}: depth-bounded DFS (the paper's "db:N");
//   - IDFS: iterative depth-bounding (depth-bounded DFS with an increasing
//     bound);
//   - Random: uniform random walk over the scheduling tree.
package baseline

import (
	"fmt"
	"math/rand"

	"icb/internal/core"
	"icb/internal/sched"
)

// DFS is (optionally depth-bounded) depth-first search. The zero value is
// unbounded DFS.
type DFS struct {
	// Depth cuts every execution after this many steps; 0 means unbounded.
	Depth int
}

// Name implements core.Strategy ("dfs" or "db:N").
func (d DFS) Name() string {
	if d.Depth > 0 {
		return fmt.Sprintf("db:%d", d.Depth)
	}
	return "dfs"
}

// Explore implements core.Strategy.
func (d DFS) Explore(e *core.Engine) {
	exhausted, _ := runDFS(e, d.Depth)
	if exhausted {
		e.MarkExhausted()
	}
}

// runDFS explores the scheduling tree truncated at depth (0 = unbounded).
// It reports whether it drained its frontier, and whether any execution was
// cut by the depth bound (if not, the truncated tree was the whole tree).
func runDFS(e *core.Engine, depth int) (exhausted, anyCut bool) {
	cache := e.Cache()
	if depth > 0 {
		// A truncated subtree must not register its root decisions as fully
		// explored, so depth-bounded search runs uncached.
		cache = nil
	}
	stack := []sched.Schedule{nil}
	for len(stack) > 0 {
		if e.Done() {
			return false, anyCut
		}
		e.NoteFrontier(len(stack) - 1)
		path := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ctrl := &dfsController{
			path:  path,
			depth: depth,
			cache: cache,
			onAlt: func(alt sched.Schedule) { stack = append(stack, alt) },
		}
		out, done := e.RunExecution(ctrl)
		if out.Status == sched.StatusStopped && !ctrl.cacheCut {
			anyCut = true
		}
		if done {
			return false, anyCut
		}
	}
	return true, anyCut
}

// dfsController replays a prefix, then picks the lowest-numbered enabled
// thread while recording every sibling alternative, cutting the execution
// at the depth bound.
type dfsController struct {
	path     sched.Schedule
	pos      int
	cur      sched.Schedule
	depth    int
	cache    *core.Cache
	cacheCut bool
	onAlt    func(sched.Schedule)
}

// PickThread implements sched.Controller.
func (c *dfsController) PickThread(info sched.PickInfo) (sched.TID, bool) {
	if c.depth > 0 && info.Step >= c.depth {
		return sched.NoTID, false
	}
	if c.pos < len(c.path) {
		d := c.path[c.pos]
		c.pos++
		if d.Kind != sched.DecisionThread || !info.IsEnabled(d.Thread) {
			panic(&sched.ReplayError{Pos: c.pos - 1, Want: d, Got: fmt.Sprintf("enabled set %v", info.Enabled)})
		}
		c.cur = append(c.cur, d)
		return d.Thread, true
	}
	pick := info.Enabled[0]
	if c.cache != nil && !c.cache.TryTake(sched.ThreadDecision(pick), 0) {
		c.cacheCut = true
		return sched.NoTID, false
	}
	// Push siblings right-to-left so the leftmost subtree is explored next.
	for i := len(info.Enabled) - 1; i >= 1; i-- {
		if c.cache == nil || c.cache.TryTake(sched.ThreadDecision(info.Enabled[i]), 0) {
			c.onAlt(c.cur.Extend(sched.ThreadDecision(info.Enabled[i])))
		}
	}
	c.cur = append(c.cur, sched.ThreadDecision(pick))
	return pick, true
}

// PickData implements sched.Controller.
func (c *dfsController) PickData(t sched.TID, n int) int {
	if c.pos < len(c.path) {
		d := c.path[c.pos]
		c.pos++
		if d.Kind != sched.DecisionData || d.Data < 0 || d.Data >= n {
			panic(&sched.ReplayError{Pos: c.pos - 1, Want: d, Got: fmt.Sprintf("a data choice over %d values", n)})
		}
		c.cur = append(c.cur, d)
		return d.Data
	}
	if c.cache != nil {
		c.cache.TryTake(sched.DataDecision(0), 0)
	}
	for v := n - 1; v >= 1; v-- {
		if c.cache == nil || c.cache.TryTake(sched.DataDecision(v), 0) {
			c.onAlt(c.cur.Extend(sched.DataDecision(v)))
		}
	}
	c.cur = append(c.cur, sched.DataDecision(0))
	return 0
}

// IDFS is iterative depth-bounding: depth-bounded DFS re-run with the bound
// increased by Step until the tree is fully covered or the budget runs out.
type IDFS struct {
	// Start is the initial depth bound (default 20).
	Start int
	// Step is the bound increment between rounds (default Start).
	Step int
}

// Name implements core.Strategy.
func (s IDFS) Name() string { return fmt.Sprintf("idfs:%d+%d", s.startDepth(), s.stepBy()) }

func (s IDFS) startDepth() int {
	if s.Start <= 0 {
		return 20
	}
	return s.Start
}

func (s IDFS) stepBy() int {
	if s.Step <= 0 {
		return s.startDepth()
	}
	return s.Step
}

// Explore implements core.Strategy.
func (s IDFS) Explore(e *core.Engine) {
	for depth := s.startDepth(); !e.Done(); depth += s.stepBy() {
		// Each depth round is a "bound" for telemetry purposes (BoundStats,
		// progress events); no coverage guarantee is claimed for it.
		e.BeginBound(depth, 1)
		exhausted, anyCut := runDFS(e, depth)
		if !exhausted {
			return
		}
		e.CompleteBound(depth)
		if !anyCut {
			// No execution was truncated: the bounded tree was the full
			// tree, so the search is complete.
			e.MarkExhausted()
			return
		}
	}
}

// Random is a uniform random walk repeated until the execution budget runs
// out: at every scheduling point an enabled thread is picked uniformly at
// random. If Options.MaxExecutions is unset, DefaultExecutions is used.
type Random struct {
	// Seed makes the walk reproducible.
	Seed int64
}

// DefaultExecutions bounds a Random search when no execution budget is set.
const DefaultExecutions = 10000

// Name implements core.Strategy.
func (Random) Name() string { return "random" }

// Explore implements core.Strategy.
func (r Random) Explore(e *core.Engine) {
	rng := rand.New(rand.NewSource(r.Seed))
	limit := e.Options().MaxExecutions
	if limit <= 0 {
		limit = DefaultExecutions
	}
	for i := 0; i < limit && !e.Done(); i++ {
		if _, done := e.RunExecution(&randomController{rng: rng}); done {
			return
		}
	}
}

type randomController struct{ rng *rand.Rand }

// PickThread implements sched.Controller.
func (c *randomController) PickThread(info sched.PickInfo) (sched.TID, bool) {
	return info.Enabled[c.rng.Intn(len(info.Enabled))], true
}

// PickData implements sched.Controller.
func (c *randomController) PickData(_ sched.TID, n int) int { return c.rng.Intn(n) }
