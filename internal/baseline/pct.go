package baseline

import (
	"math/rand"

	"icb/internal/core"
	"icb/internal/sched"
)

// PCT is probabilistic concurrency testing (Burckhardt, Kothari, Musuvathi
// & Nagarakatte, ASPLOS 2010) — the successor line of work to the paper's
// iterative context bounding, included here as an extension. Each
// execution assigns the threads random priorities and runs the
// highest-priority enabled thread; at Depth-1 random steps the running
// thread's priority is demoted below everything else. For a bug of depth d
// (d ordering constraints), one execution exposes it with probability at
// least 1/(n·k^(d-1)).
//
// Unlike ICB, PCT gives a per-execution probabilistic guarantee instead of
// an exhaustive bound guarantee; the two are complementary and the tests
// compare their bug-finding budgets.
type PCT struct {
	// Depth is the bug depth d the schedule targets (default 2; depth 1
	// needs no priority change points).
	Depth int
	// MaxSteps estimates k, the execution length from which change points
	// are drawn (default 512).
	MaxSteps int
	// Seed makes the run reproducible.
	Seed int64
}

// Name implements core.Strategy.
func (PCT) Name() string { return "pct" }

// Explore implements core.Strategy.
func (p PCT) Explore(e *core.Engine) {
	depth := p.Depth
	if depth <= 0 {
		depth = 2
	}
	k := p.MaxSteps
	if k <= 0 {
		k = 512
	}
	rng := rand.New(rand.NewSource(p.Seed))
	limit := e.Options().MaxExecutions
	if limit <= 0 {
		limit = DefaultExecutions
	}
	for i := 0; i < limit && !e.Done(); i++ {
		ctrl := newPCTController(rng, depth, k)
		if _, done := e.RunExecution(ctrl); done {
			return
		}
	}
}

// pctController realizes one PCT schedule.
type pctController struct {
	rng *rand.Rand
	// prio maps TID to priority; higher runs first. Each thread draws an
	// independent random priority on first sight (ties broken by TID), so
	// any relative ordering of the threads is possible — the random
	// permutation of the PCT paper.
	prio map[sched.TID]int
	// changePoints are the steps at which the running thread is demoted.
	changePoints map[int]bool
	demoted      int // next demotion priority (below all initials)
}

// initialBand separates initial priorities (all >= initialBand) from the
// demotion band below it.
const initialBand = 1 << 10

func newPCTController(rng *rand.Rand, depth, k int) *pctController {
	c := &pctController{
		rng:          rng,
		prio:         make(map[sched.TID]int),
		changePoints: make(map[int]bool),
		demoted:      initialBand - 1,
	}
	for i := 0; i < depth-1; i++ {
		c.changePoints[rng.Intn(k)] = true
	}
	return c
}

func (c *pctController) priority(t sched.TID) int {
	if p, ok := c.prio[t]; ok {
		return p
	}
	p := initialBand + c.rng.Intn(1<<20)
	c.prio[t] = p
	return p
}

// PickThread implements sched.Controller.
func (c *pctController) PickThread(info sched.PickInfo) (sched.TID, bool) {
	if c.changePoints[info.Step] && info.Prev != sched.NoTID {
		// Demote the running thread below everything seen so far.
		c.demoted--
		c.prio[info.Prev] = c.demoted
	}
	best := info.Enabled[0]
	bestP := c.priority(best)
	for _, t := range info.Enabled[1:] {
		// Ties (possible but rare) resolve to the lower TID.
		if p := c.priority(t); p > bestP {
			best, bestP = t, p
		}
	}
	return best, true
}

// PickData implements sched.Controller.
func (c *pctController) PickData(_ sched.TID, n int) int { return c.rng.Intn(n) }
