package icb_test

import (
	"testing"

	"icb"
)

// TestPublicAPIQuickstart exercises the library exactly as a downstream
// user would: model a buggy program with the facade types only, explore
// it, and replay the reported schedule.
func TestPublicAPIQuickstart(t *testing.T) {
	prog := func(t *icb.T) {
		m := icb.NewMutex(t, "m")
		balance := icb.NewInt(t, "balance", 100)
		withdraw := func(t *icb.T, amount int) {
			m.Lock(t)
			ok := balance.Load(t) >= amount
			m.Unlock(t)
			if ok {
				m.Lock(t)
				balance.Update(t, func(b int) int { return b - amount })
				m.Unlock(t)
			}
		}
		w1 := t.Go("w1", func(t *icb.T) { withdraw(t, 80) })
		w2 := t.Go("w2", func(t *icb.T) { withdraw(t, 80) })
		t.Join(w1)
		t.Join(w2)
		t.Assert(balance.Load(t) >= 0, "overdrawn: %d", balance.Load(t))
	}

	res := icb.Explore(prog, icb.ICB(), icb.Options{
		MaxPreemptions: -1,
		CheckRaces:     true,
		StopOnFirstBug: true,
	})
	bug := res.FirstBug()
	if bug == nil {
		t.Fatal("check-then-act bug not found")
	}
	if bug.Preemptions != 1 {
		t.Fatalf("found with %d preemptions, want the minimal 1", bug.Preemptions)
	}

	out := icb.Run(prog, &icb.ReplayController{Prefix: bug.Schedule, Tail: icb.FirstEnabled{}}, icb.Config{})
	if !out.Status.Buggy() {
		t.Fatalf("replay did not reproduce: %v", out)
	}
}

// TestPublicAPIPrimitives touches every re-exported primitive once under
// the canonical schedule.
func TestPublicAPIPrimitives(t *testing.T) {
	prog := func(t *icb.T) {
		mu := icb.NewMutex(t, "mu")
		rw := icb.NewRWMutex(t, "rw")
		ev := icb.NewEvent(t, "ev", false, false)
		sem := icb.NewSemaphore(t, "sem", 1)
		wg := icb.NewWaitGroup(t, "wg", 1)
		cv := icb.NewCond(t, "cv", mu)
		q := icb.NewQueue[string](t, "q", 2)
		ai := icb.NewAtomicInt(t, "ai", 5)
		v := icb.NewVar(t, "v", "hello")

		w := t.Go("w", func(t *icb.T) {
			ev.Wait(t)
			q.Send(t, "ping")
			mu.Lock(t)
			cv.Signal(t)
			mu.Unlock(t)
			wg.Done(t)
		})

		rw.RLock(t)
		rw.RUnlock(t)
		sem.Acquire(t)
		sem.Release(t, 1)
		t.Assert(ai.Add(t, 2) == 7, "atomic add")
		t.Assert(v.Load(t) == "hello", "var load")
		ev.Set(t)
		msg, ok := q.Recv(t)
		t.Assert(ok && msg == "ping", "queue recv")
		wg.Wait(t)
		t.Join(w)
	}
	res := icb.Explore(prog, icb.ICB(), icb.Options{MaxPreemptions: 1, CheckRaces: true, StateCache: true})
	if len(res.Bugs) != 0 {
		t.Fatalf("unexpected bug: %v", res.Bugs[0].String())
	}
}

// TestStrategiesConstructible checks the strategy constructors.
func TestStrategiesConstructible(t *testing.T) {
	for _, s := range []icb.Strategy{icb.ICB(), icb.DFS(0), icb.DFS(10), icb.IDFS(5, 5), icb.Random(7)} {
		if s.Name() == "" {
			t.Fatal("unnamed strategy")
		}
	}
}

func TestPCTStrategyViaFacade(t *testing.T) {
	prog := func(t *icb.T) {
		a := icb.NewAtomicInt(t, "a", 0)
		w := t.Go("w", func(t *icb.T) { a.Store(t, 1); a.Store(t, 0) })
		t.Assert(a.Load(t) == 0, "transient")
		t.Join(w)
	}
	res := icb.Explore(prog, icb.PCT(2, 9), icb.Options{MaxExecutions: 500, StopOnFirstBug: true})
	if res.FirstBug() == nil {
		t.Fatal("PCT missed the depth-2 bug")
	}
}
