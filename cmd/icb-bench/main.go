// Command icb-bench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	icb-bench -exp table2
//	icb-bench -exp fig2 -budget 25000
//	icb-bench -exp all
//	icb-bench -exp fig2 -cpuprofile cpu.out -http :6060
//
// With -http (alias -metrics-addr), the live search dashboard is served
// while the experiments run: the single-page view at /, counters plus
// schedule-space estimates as JSON at /api/snapshot, the event stream as
// SSE at /api/events, and the same snapshot as expvar JSON at /debug/vars
// (key "icb") for scrapers. Everything is registered on a dedicated
// ServeMux — never http.DefaultServeMux, where stray init() registrations
// from imported packages could leak handlers onto the metrics port — and
// the server drains gracefully when the experiments finish.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"icb/internal/exper"
	"icb/internal/obs"
	"icb/internal/obs/coverage"
	"icb/internal/obs/dash"
	"icb/internal/obs/estimate"
	"icb/internal/obs/health"
	"icb/internal/obs/logx"
)

// log carries structured diagnostics to stderr; the experiment tables keep
// writing to stdout. Configured in main from -log-json / -log-level.
var log = slog.Default()

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, table2, fig1, fig2, fig4, fig5, fig6, ablate, parallel, profile, bpor, all")
		budget   = flag.Int("budget", 2000, "execution budget per strategy for growth curves")
		sample   = flag.Int("sample", 0, "curve sampling stride (0 = budget/50)")
		seed     = flag.Int64("seed", 1, "random-walk seed")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker engines for icb searches (1 = sequential reference search)")
		parOut   = flag.String("parallel-out", "BENCH_parallel.json", "JSON output path for -exp parallel (empty = stdout table only)")
		profOut  = flag.String("profile-out", "BENCH_profile.json", "JSON output path for -exp profile (empty = stdout table only)")
		bporOut  = flag.String("bpor-out", "BENCH_bpor.json", "JSON output path for -exp bpor (empty = stdout table only)")
		baseline = flag.String("baseline", "", "baseline report to compare -exp profile, -exp bpor or -exp parallel against; regressions exit nonzero")
		force    = flag.Bool("force", false, "allow -exp parallel to overwrite a speedup_valid baseline from a host that cannot measure speedups (GOMAXPROCS=1)")
		tol      = flag.Float64("tolerance", 0, "ratio tolerance for -baseline wall-clock metrics (0 = default 5.0)")
		csvDir   = flag.String("csv", "", "also write plot-ready CSV files into this directory (runs every experiment)")
		progress = flag.Bool("progress", false, "print live search progress to stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	var httpAddr string
	flag.StringVar(&httpAddr, "http", "", "serve the live search dashboard on this address (e.g. :6060)")
	flag.StringVar(&httpAddr, "metrics-addr", "", "alias for -http (kept for compatibility)")
	var lo logx.Options
	lo.Flags(flag.CommandLine)
	flag.Parse()
	log = logx.New("icb-bench", lo)

	if *version {
		fmt.Println("icb-bench", obs.BuildInfo())
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	cfg := exper.Config{Budget: *budget, Sample: *sample, Seed: *seed, Workers: *workers}
	var sinks []obs.Sink
	var prg *obs.Progress
	if *progress {
		prg = obs.NewProgress(os.Stderr, 0)
		sinks = append(sinks, prg)
	}
	if httpAddr != "" {
		m := &obs.Metrics{}
		est := estimate.New()
		m.SetEstimator(est)
		cov := coverage.NewRecorder("exper")
		m.SetCoverage(cov)
		cfg.Metrics = m
		cfg.Estimator = est
		cfg.Coverage = cov
		sinks = append(sinks, est)
		if prg != nil {
			prg.SetEstimator(est)
		}

		ds := dash.New(m)
		sinks = append(sinks, ds.Sink())
		probe := health.New(0)
		probe.MarkStarted()
		ds.Mount("/healthz", probe.Healthz())
		ds.Mount("/readyz", probe.Readyz())
		sinks = append(sinks, probe)
		// Dedicated mux: the dashboard plus /debug/vars for expvar
		// scrapers, with the snapshot published under the "icb" key.
		// Publish is process-global, but the handler serving it is ours.
		expvar.Publish("icb", expvar.Func(func() any { return m.Snapshot() }))
		mux := http.NewServeMux()
		mux.Handle("/", ds.Handler())
		mux.Handle("/debug/vars", expvar.Handler())

		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			fatal(err)
		}
		srv := &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Error("dashboard server failed", "err", err)
			}
		}()
		log.Info("dashboard serving", "url", fmt.Sprintf("http://%s/", ln.Addr()), "expvar", "/debug/vars")
		defer func() {
			// Drain open SSE streams with a deadline so a finished bench
			// run exits promptly even with a browser still attached.
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}
	cfg.Sink = obs.Multi(sinks...)

	if *csvDir != "" {
		if err := exper.WriteCSV(*csvDir, cfg); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote CSV files to %s\n", *csvDir)
		return
	}
	if *exp == "parallel" {
		// Run the scaling study directly so -parallel-out, -baseline and
		// -force control the report path, the regression gate and the
		// stale-overwrite guard.
		if err := exper.Parallel(os.Stdout, cfg, *parOut, *baseline, *force); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "profile" {
		// Run the profiler study directly so -profile-out and -baseline
		// control the report path and the regression gate.
		if err := exper.Profile(os.Stdout, cfg, *profOut, *baseline, *tol); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "bpor" {
		// Run the reduction study directly so -bpor-out and -baseline
		// control the report path and the regression gate.
		if err := exper.BPOR(os.Stdout, cfg, *bporOut, *baseline); err != nil {
			fatal(err)
		}
		return
	}
	if err := exper.Run(*exp, os.Stdout, cfg); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	log.Error("fatal", "err", err)
	os.Exit(1)
}
