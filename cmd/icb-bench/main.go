// Command icb-bench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	icb-bench -exp table2
//	icb-bench -exp fig2 -budget 25000
//	icb-bench -exp all
//	icb-bench -exp fig2 -cpuprofile cpu.out -metrics-addr :6060
//
// With -metrics-addr, live search counters are served over HTTP as expvar
// JSON at /debug/vars (key "icb") while the experiments run.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"

	"icb/internal/exper"
	"icb/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, table2, fig1, fig2, fig4, fig5, fig6, ablate, all")
		budget   = flag.Int("budget", 2000, "execution budget per strategy for growth curves")
		sample   = flag.Int("sample", 0, "curve sampling stride (0 = budget/50)")
		seed     = flag.Int64("seed", 1, "random-walk seed")
		csvDir   = flag.String("csv", "", "also write plot-ready CSV files into this directory (runs every experiment)")
		progress = flag.Bool("progress", false, "print live search progress to stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metrics  = flag.String("metrics-addr", "", "serve live search counters as expvar JSON on this address (e.g. :6060)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	cfg := exper.Config{Budget: *budget, Sample: *sample, Seed: *seed}
	if *progress {
		cfg.Sink = obs.NewProgress(os.Stderr, 0)
	}
	if *metrics != "" {
		m := &obs.Metrics{}
		cfg.Metrics = m
		expvar.Publish("icb", expvar.Func(func() any { return m.Snapshot() }))
		go func() {
			// expvar registers its handler on http.DefaultServeMux.
			if err := http.ListenAndServe(*metrics, nil); err != nil {
				fmt.Fprintln(os.Stderr, "icb-bench: metrics:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "icb-bench: serving metrics at http://%s/debug/vars\n", *metrics)
	}

	if *csvDir != "" {
		if err := exper.WriteCSV(*csvDir, cfg); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote CSV files to %s\n", *csvDir)
		return
	}
	if err := exper.Run(*exp, os.Stdout, cfg); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icb-bench:", err)
	os.Exit(1)
}
