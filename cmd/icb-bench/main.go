// Command icb-bench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	icb-bench -exp table2
//	icb-bench -exp fig2 -budget 25000
//	icb-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"icb/internal/exper"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table1, table2, fig1, fig2, fig4, fig5, fig6, all")
		budget = flag.Int("budget", 2000, "execution budget per strategy for growth curves")
		sample = flag.Int("sample", 0, "curve sampling stride (0 = budget/50)")
		seed   = flag.Int64("seed", 1, "random-walk seed")
		csvDir = flag.String("csv", "", "also write plot-ready CSV files into this directory (runs every experiment)")
	)
	flag.Parse()

	cfg := exper.Config{Budget: *budget, Sample: *sample, Seed: *seed}
	if *csvDir != "" {
		if err := exper.WriteCSV(*csvDir, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "icb-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote CSV files to %s\n", *csvDir)
		return
	}
	if err := exper.Run(*exp, os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "icb-bench:", err)
		os.Exit(1)
	}
}
