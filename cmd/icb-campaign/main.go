// Command icb-campaign inspects the durable campaign ledgers that icb
// -journal-dir writes: it lists runs, diffs two runs for regressions, and
// renders cross-run trends.
//
// Usage:
//
//	icb-campaign list <journal-dir>...
//	icb-campaign diff [-tolerance 0.05] [-wall-tolerance 0] <journal-dir>
//	icb-campaign diff <journal-dir> <run-id-old> <run-id-new>
//	icb-campaign diff -baseline baseline.json <journal-dir>
//	icb-campaign trend [-json] <journal-dir>...
//
// diff compares the two most recent comparable runs (same config hash) by
// default, a named pair when two run ids are given, or the newest run
// against a checked-in baseline RunRecord with -baseline — the shape CI
// gates use. Exit status is machine-readable: 0 clean, 1 at least one
// regression found, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"icb/internal/obs"
	"icb/internal/obs/journal"
)

func main() { os.Exit(run()) }

func run() int {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		return 2
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "list":
		return list(args)
	case "diff":
		return diff(args)
	case "trend":
		return trend(args)
	}
	fmt.Fprintf(os.Stderr, "icb-campaign: unknown command %q\n", cmd)
	usage()
	return 2
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  icb-campaign list <journal-dir>...
  icb-campaign diff [-tolerance F] [-wall-tolerance F] [-baseline FILE] <journal-dir> [run-old run-new]
  icb-campaign trend [-json] <journal-dir>...

exit status: 0 clean, 1 regression found (diff), 2 usage or I/O error
`)
}

// readDirs loads and concatenates the ledgers of every named journal
// directory, in start-time order.
func readDirs(dirs []string) ([]obs.RunRecord, error) {
	var runs []obs.RunRecord
	for _, dir := range dirs {
		rs, err := journal.ReadRuns(dir)
		if err != nil {
			return nil, err
		}
		runs = append(runs, rs...)
	}
	sort.SliceStable(runs, func(i, j int) bool {
		return runs[i].StartUnixNS < runs[j].StartUnixNS
	})
	return runs, nil
}

func list(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	runs, err := readDirs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icb-campaign:", err)
		return 2
	}
	if len(runs) == 0 {
		fmt.Println("no runs recorded")
		return 0
	}
	fmt.Printf("%-42s %-19s %-10s %-8s %10s %8s %6s %s\n",
		"RUN", "START", "PROGRAM", "CONFIG", "EXECS", "SECS", "BUGS", "NOTES")
	for i := range runs {
		r := &runs[i]
		var notes []string
		if r.Resumed {
			notes = append(notes, "resumed")
		}
		if r.Interrupted {
			notes = append(notes, "interrupted")
		}
		if r.Exhausted {
			notes = append(notes, "exhausted")
		}
		if r.BoundCompleted >= 0 {
			notes = append(notes, fmt.Sprintf("bound<=%d", r.BoundCompleted))
		}
		fmt.Printf("%-42s %-19s %-10s %-8s %10d %8.2f %6d %s\n",
			r.RunID,
			time.Unix(0, r.StartUnixNS).UTC().Format("2006-01-02T15:04:05"),
			r.Program, short(r.ConfigHash), r.Executions,
			float64(r.DurationNS)/1e9, len(r.Bugs), strings.Join(notes, ","))
	}
	return 0
}

func short(h string) string {
	if len(h) > 8 {
		return h[:8]
	}
	return h
}

func diff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	tol := fs.Float64("tolerance", 0.05, "fractional slack on deterministic metrics before a change counts as a regression")
	wallTol := fs.Float64("wall-tolerance", 0, "fractional slack on wall-clock metrics (0 = don't gate wall-clock at all)")
	baseline := fs.String("baseline", "", "compare the newest run against this RunRecord JSON file instead of a prior ledger entry")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	args = fs.Args()
	if len(args) != 1 && len(args) != 3 {
		usage()
		return 2
	}
	runs, err := journal.ReadRuns(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "icb-campaign:", err)
		return 2
	}
	var old, cur *obs.RunRecord
	switch {
	case *baseline != "":
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "icb-campaign:", err)
			return 2
		}
		old = &obs.RunRecord{}
		if err := json.Unmarshal(data, old); err != nil {
			fmt.Fprintf(os.Stderr, "icb-campaign: corrupt baseline %s: %v\n", *baseline, err)
			return 2
		}
		if len(runs) == 0 {
			fmt.Fprintf(os.Stderr, "icb-campaign: %s has no runs to compare against the baseline\n", args[0])
			return 2
		}
		cur = &runs[len(runs)-1]
	case len(args) == 3:
		old, cur = findRun(runs, args[1]), findRun(runs, args[2])
		if old == nil || cur == nil {
			fmt.Fprintf(os.Stderr, "icb-campaign: run id not found in %s\n", args[0])
			return 2
		}
	default:
		// The two most recent runs sharing the newest run's config.
		if len(runs) < 2 {
			fmt.Fprintf(os.Stderr, "icb-campaign: %s has %d run(s); diff needs two\n", args[0], len(runs))
			return 2
		}
		cur = &runs[len(runs)-1]
		for i := len(runs) - 2; i >= 0; i-- {
			if runs[i].ConfigHash == cur.ConfigHash {
				old = &runs[i]
				break
			}
		}
		if old == nil {
			fmt.Fprintf(os.Stderr, "icb-campaign: no earlier run shares config %s with %s\n", cur.ConfigHash, cur.RunID)
			return 2
		}
	}
	regs, err := journal.Diff(old, cur, *tol, *wallTol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icb-campaign:", err)
		return 2
	}
	fmt.Printf("comparing %s -> %s (config %s, tolerance %.0f%%)\n",
		old.RunID, cur.RunID, short(cur.ConfigHash), *tol*100)
	if len(regs) == 0 {
		fmt.Println("no regressions")
		return 0
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s: %s\n", r.Metric, r.Detail)
	}
	return 1
}

func findRun(runs []obs.RunRecord, id string) *obs.RunRecord {
	for i := range runs {
		if runs[i].RunID == id {
			return &runs[i]
		}
	}
	return nil
}

func trend(args []string) int {
	fs := flag.NewFlagSet("trend", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "print the trend points as a JSON array instead of a table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	args = fs.Args()
	if len(args) < 1 {
		usage()
		return 2
	}
	runs, err := readDirs(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icb-campaign:", err)
		return 2
	}
	points := journal.Trend(runs)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			fmt.Fprintln(os.Stderr, "icb-campaign:", err)
			return 2
		}
		return 0
	}
	if len(points) == 0 {
		fmt.Println("no runs recorded")
		return 0
	}
	fmt.Printf("%-42s %-8s %10s %10s %8s %9s %6s %10s %7s\n",
		"RUN", "CONFIG", "EXECS", "EXECS/S", "STATES", "ΔSTATES", "BUGS", "1ST-BUG@", "ATLAS")
	for _, p := range points {
		firstBug := "-"
		if p.FirstBugExecution > 0 {
			firstBug = fmt.Sprintf("%d", p.FirstBugExecution)
			if p.DeltaFirstBugExecution != 0 {
				firstBug += fmt.Sprintf("(%+d)", p.DeltaFirstBugExecution)
			}
		}
		fmt.Printf("%-42s %-8s %10d %10.0f %8d %+9d %6d %10s %7d\n",
			p.RunID, short(p.ConfigHash), p.Executions, p.ExecsPerSec,
			p.States, p.DeltaStates, p.Bugs, firstBug, p.AtlasSites)
	}
	return 0
}
