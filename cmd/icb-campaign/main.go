// Command icb-campaign inspects the durable campaign ledgers that icb
// -journal-dir writes — it lists runs, diffs two runs for regressions, and
// renders cross-run trends — and, with serve, aggregates a live fleet of
// icb workers into one merged dashboard.
//
// Usage:
//
//	icb-campaign list <journal-dir>...
//	icb-campaign diff [-tolerance 0.05] [-wall-tolerance 0] <journal-dir>
//	icb-campaign diff <journal-dir> <run-id-old> <run-id-new>
//	icb-campaign diff -baseline baseline.json <journal-dir>
//	icb-campaign trend [-json] <journal-dir>...
//	icb-campaign serve [-http addr] [-peers url,...] [-journal-dir dir] [-interval 2s] [-events file]
//
// diff compares the two most recent comparable runs (same config hash) by
// default, a named pair when two run ids are given, or the newest run
// against a checked-in baseline RunRecord with -baseline — the shape CI
// gates use. Exit status is machine-readable: 0 clean, 1 at least one
// regression found, 2 usage or I/O error.
//
// serve polls each worker's /api/snapshot and /metrics, merges them into a
// fleet-wide view, and serves the standard dashboard UI (plus /metrics,
// /healthz, /readyz) over the merged snapshot. Workers are named
// explicitly with -peers and/or discovered from a shared -journal-dir,
// where every icb -http -journal-dir worker advertises itself under
// <dir>/peers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"icb/internal/obs"
	"icb/internal/obs/dash"
	"icb/internal/obs/fleet"
	"icb/internal/obs/health"
	"icb/internal/obs/journal"
	"icb/internal/obs/logx"
)

// log carries structured diagnostics to stderr; listings, diffs, and trend
// tables stay on stdout as program output. Configured in run from
// -log-json / -log-level; logOpts is shared with the serve FlagSet so the
// flags are accepted both before and after the subcommand.
var (
	log     = slog.Default()
	logOpts logx.Options
)

func main() { os.Exit(run()) }

func run() int {
	flag.Usage = usage
	logOpts.Flags(flag.CommandLine)
	flag.Parse()
	log = logx.New("icb-campaign", logOpts)
	if flag.NArg() < 1 {
		usage()
		return 2
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "list":
		return list(args)
	case "diff":
		return diff(args)
	case "trend":
		return trend(args)
	case "serve":
		return serve(args)
	}
	log.Error("unknown command", "command", cmd)
	usage()
	return 2
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `usage:
  icb-campaign list <journal-dir>...
  icb-campaign diff [-tolerance F] [-wall-tolerance F] [-baseline FILE] <journal-dir> [run-old run-new]
  icb-campaign trend [-json] <journal-dir>...
  icb-campaign serve [-http ADDR] [-peers URL,...] [-journal-dir DIR] [-interval D] [-events FILE]

exit status: 0 clean, 1 regression found (diff), 2 usage or I/O error
`)
}

// serve runs the fleet aggregator: poll every worker dashboard, merge the
// snapshots, and serve the merged view until SIGINT/SIGTERM.
func serve(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	httpAddr := fs.String("http", "127.0.0.1:8090", "serve the merged fleet dashboard on this address")
	peersFlag := fs.String("peers", "", "comma-separated worker dashboard base URLs (e.g. http://127.0.0.1:8081,http://127.0.0.1:8082)")
	jrnlDir := fs.String("journal-dir", "", "shared journal directory: discover workers advertised under <dir>/peers and serve its run history on /api/runs")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	events := fs.String("events", "", "append fleet NDJSON events (fleet_snapshot, peer_status) to this file")
	logOpts.Flags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log = logx.New("icb-campaign", logOpts)
	if fs.NArg() > 0 {
		log.Error("serve: unexpected arguments", "args", fmt.Sprint(fs.Args()))
		return 2
	}
	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 && *jrnlDir == "" {
		log.Error("serve needs -peers and/or -journal-dir to find workers")
		usage()
		return 2
	}

	var nd *obs.NDJSON
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			log.Error("cannot create events file", "path", *events, "err", err)
			return 2
		}
		nd = obs.NewNDJSON(f)
		defer func() {
			if err := nd.Close(); err != nil {
				log.Error("event stream flush failed", "err", err)
			}
			f.Close()
		}()
	}

	// The dashboard serves the aggregator's merged snapshot; the poll
	// callbacks bridge fleet events onto NDJSON and SSE. ds is assigned
	// before the first poll round (Run is called last), so the closures'
	// forward references are safe.
	probe := health.New(0)
	var ds *dash.Server
	agg := fleet.New(fleet.Options{
		Peers:      peers,
		JournalDir: *jrnlDir,
		Interval:   *interval,
		Log:        log,
		OnFleetSnapshot: func(ev obs.FleetSnapshotEvent) {
			probe.Beat()
			if nd != nil {
				nd.FleetSnapshot(ev)
			}
			ds.Publish("fleet_snapshot", ev)
		},
		OnPeerStatus: func(ev obs.PeerStatusEvent) {
			if nd != nil {
				nd.PeerStatus(ev)
			}
			ds.Publish("peer_status", ev)
		},
	})
	ds = dash.NewWithSource(agg.Merged)
	if *jrnlDir != "" {
		ds.SetJournalDirs([]string{*jrnlDir})
	}
	// Ready once at least one poll round has completed: before that the
	// merged view is empty, not a fleet.
	probe.AddReadyCheck(func() error {
		if agg.Rounds() == 0 {
			return fmt.Errorf("no poll round completed yet")
		}
		return nil
	})
	ds.Mount("/healthz", probe.Healthz())
	ds.Mount("/readyz", probe.Readyz())

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Error("fleet dashboard listen failed", "addr", *httpAddr, "err", err)
		return 2
	}
	srv := &http.Server{Handler: ds.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Error("fleet dashboard server failed", "err", err)
		}
	}()
	log.Info("fleet dashboard serving",
		"url", fleet.BaseURL(ln.Addr().String()),
		"peers", len(peers), "journal_dir", *jrnlDir, "interval", interval.String())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	probe.MarkStarted()
	agg.Run(ctx) // blocks; polls immediately, then every interval
	probe.MarkDone()
	log.Info("fleet aggregator stopping")
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), time.Second)
	defer shutdownCancel()
	srv.Shutdown(shutdownCtx)
	return 0
}

// readDirs loads and concatenates the ledgers of every named journal
// directory, in start-time order.
func readDirs(dirs []string) ([]obs.RunRecord, error) {
	var runs []obs.RunRecord
	for _, dir := range dirs {
		rs, err := journal.ReadRuns(dir)
		if err != nil {
			return nil, err
		}
		runs = append(runs, rs...)
	}
	sort.SliceStable(runs, func(i, j int) bool {
		return runs[i].StartUnixNS < runs[j].StartUnixNS
	})
	return runs, nil
}

func list(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	runs, err := readDirs(args)
	if err != nil {
		log.Error("cannot read journal", "err", err)
		return 2
	}
	if len(runs) == 0 {
		fmt.Println("no runs recorded")
		return 0
	}
	fmt.Printf("%-42s %-19s %-10s %-8s %10s %8s %6s %s\n",
		"RUN", "START", "PROGRAM", "CONFIG", "EXECS", "SECS", "BUGS", "NOTES")
	for i := range runs {
		r := &runs[i]
		var notes []string
		if r.Resumed {
			notes = append(notes, "resumed")
		}
		if r.Interrupted {
			notes = append(notes, "interrupted")
		}
		if r.Exhausted {
			notes = append(notes, "exhausted")
		}
		if r.BoundCompleted >= 0 {
			notes = append(notes, fmt.Sprintf("bound<=%d", r.BoundCompleted))
		}
		fmt.Printf("%-42s %-19s %-10s %-8s %10d %8.2f %6d %s\n",
			r.RunID,
			time.Unix(0, r.StartUnixNS).UTC().Format("2006-01-02T15:04:05"),
			r.Program, short(r.ConfigHash), r.Executions,
			float64(r.DurationNS)/1e9, len(r.Bugs), strings.Join(notes, ","))
	}
	return 0
}

func short(h string) string {
	if len(h) > 8 {
		return h[:8]
	}
	return h
}

func diff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	tol := fs.Float64("tolerance", 0.05, "fractional slack on deterministic metrics before a change counts as a regression")
	wallTol := fs.Float64("wall-tolerance", 0, "fractional slack on wall-clock metrics (0 = don't gate wall-clock at all)")
	baseline := fs.String("baseline", "", "compare the newest run against this RunRecord JSON file instead of a prior ledger entry")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	args = fs.Args()
	if len(args) != 1 && len(args) != 3 {
		usage()
		return 2
	}
	runs, err := journal.ReadRuns(args[0])
	if err != nil {
		log.Error("cannot read journal", "dir", args[0], "err", err)
		return 2
	}
	var old, cur *obs.RunRecord
	switch {
	case *baseline != "":
		data, err := os.ReadFile(*baseline)
		if err != nil {
			log.Error("cannot read baseline", "err", err)
			return 2
		}
		old = &obs.RunRecord{}
		if err := json.Unmarshal(data, old); err != nil {
			log.Error("corrupt baseline", "path", *baseline, "err", err)
			return 2
		}
		if len(runs) == 0 {
			log.Error("no runs to compare against the baseline", "dir", args[0])
			return 2
		}
		cur = &runs[len(runs)-1]
	case len(args) == 3:
		old, cur = findRun(runs, args[1]), findRun(runs, args[2])
		if old == nil || cur == nil {
			log.Error("run id not found", "dir", args[0])
			return 2
		}
	default:
		// The two most recent runs sharing the newest run's config.
		if len(runs) < 2 {
			log.Error("diff needs two runs", "dir", args[0], "runs", len(runs))
			return 2
		}
		cur = &runs[len(runs)-1]
		for i := len(runs) - 2; i >= 0; i-- {
			if runs[i].ConfigHash == cur.ConfigHash {
				old = &runs[i]
				break
			}
		}
		if old == nil {
			log.Error("no earlier run shares the newest run's config", "config", cur.ConfigHash, "run", cur.RunID)
			return 2
		}
	}
	regs, err := journal.Diff(old, cur, *tol, *wallTol)
	if err != nil {
		log.Error("diff failed", "err", err)
		return 2
	}
	fmt.Printf("comparing %s -> %s (config %s, tolerance %.0f%%)\n",
		old.RunID, cur.RunID, short(cur.ConfigHash), *tol*100)
	if len(regs) == 0 {
		fmt.Println("no regressions")
		return 0
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s: %s\n", r.Metric, r.Detail)
	}
	return 1
}

func findRun(runs []obs.RunRecord, id string) *obs.RunRecord {
	for i := range runs {
		if runs[i].RunID == id {
			return &runs[i]
		}
	}
	return nil
}

func trend(args []string) int {
	fs := flag.NewFlagSet("trend", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "print the trend points as a JSON array instead of a table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	args = fs.Args()
	if len(args) < 1 {
		usage()
		return 2
	}
	runs, err := readDirs(args)
	if err != nil {
		log.Error("cannot read journal", "err", err)
		return 2
	}
	points := journal.Trend(runs)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			log.Error("trend encoding failed", "err", err)
			return 2
		}
		return 0
	}
	if len(points) == 0 {
		fmt.Println("no runs recorded")
		return 0
	}
	fmt.Printf("%-42s %-8s %10s %10s %8s %9s %6s %10s %7s\n",
		"RUN", "CONFIG", "EXECS", "EXECS/S", "STATES", "ΔSTATES", "BUGS", "1ST-BUG@", "ATLAS")
	for _, p := range points {
		firstBug := "-"
		if p.FirstBugExecution > 0 {
			firstBug = fmt.Sprintf("%d", p.FirstBugExecution)
			if p.DeltaFirstBugExecution != 0 {
				firstBug += fmt.Sprintf("(%+d)", p.DeltaFirstBugExecution)
			}
		}
		fmt.Printf("%-42s %-8s %10d %10.0f %8d %+9d %6d %10s %7d\n",
			p.RunID, short(p.ConfigHash), p.Executions, p.ExecsPerSec,
			p.States, p.DeltaStates, p.Bugs, firstBug, p.AtlasSites)
	}
	return 0
}
