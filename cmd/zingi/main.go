// Command zingi compiles and model-checks ZML models with the
// explicit-state checker — the ZING side of the reproduction.
//
// Usage:
//
//	zingi -src model.zml -strategy icb -bound 2
//	zingi -model txnmgr:commit-window
//	zingi -model txnmgr:correct -dump     # disassemble instead of checking
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"

	"icb/internal/obs/logx"
	"icb/internal/progs/txnmgr"
	"icb/internal/zing"
	"icb/internal/zml"
)

// log carries structured diagnostics to stderr; check results and
// disassembly stay on stdout as program output.
var log = slog.Default()

func main() {
	var (
		src      = flag.String("src", "", "path to a .zml source file")
		model    = flag.String("model", "", "built-in model, e.g. txnmgr:correct, txnmgr:commit-window")
		strategy = flag.String("strategy", "icb", "search strategy: icb or dfs")
		bound    = flag.Int("bound", -1, "preemption bound for icb (-1 = run to exhaustion)")
		items    = flag.Int("items", 0, "work-item budget (0 = unlimited)")
		first    = flag.Bool("first", true, "stop at the first bug")
		dump     = flag.Bool("dump", false, "disassemble the compiled program instead of checking")
		format   = flag.Bool("fmt", false, "pretty-print the model in canonical form instead of checking")
	)
	var lo logx.Options
	lo.Flags(flag.CommandLine)
	flag.Parse()
	log = logx.New("zingi", lo)

	source, name, err := loadSource(*src, *model)
	if err != nil {
		log.Error("cannot load model", "err", err)
		os.Exit(2)
	}
	if *format {
		out, err := zml.Format(source)
		if err != nil {
			log.Error("format failed", "model", name, "err", err)
			os.Exit(2)
		}
		fmt.Print(out)
		return
	}
	prog, err := zml.Compile(source)
	if err != nil {
		log.Error("compile failed", "model", name, "err", err)
		os.Exit(2)
	}
	if *dump {
		disassemble(prog)
		return
	}

	opt := zing.Options{MaxPreemptions: *bound, MaxItems: *items, StopOnFirstBug: *first}
	var res zing.Result
	switch *strategy {
	case "icb":
		res = zing.CheckICB(prog, opt)
	case "dfs":
		res = zing.CheckDFS(prog, opt)
	default:
		log.Error("unknown strategy (want icb or dfs)", "strategy", *strategy)
		os.Exit(2)
	}

	fmt.Printf("%s: states=%d items=%d exhausted=%v boundCompleted=%d maxK=%d maxB=%d\n",
		name, res.States, res.Items, res.Exhausted, res.BoundCompleted, res.MaxSteps, res.MaxBlocking)
	if len(res.Bugs) == 0 {
		fmt.Println("no bugs found")
		return
	}
	for i := range res.Bugs {
		fmt.Printf("BUG: %s\n", res.Bugs[i].String())
		if path := res.Bugs[i].Path; len(path) > 0 {
			fmt.Printf("     path: %s\n", zing.PathString(path))
		}
	}
	os.Exit(1)
}

func loadSource(src, model string) (source, name string, err error) {
	switch {
	case src != "" && model != "":
		return "", "", fmt.Errorf("-src and -model are mutually exclusive")
	case src != "":
		data, err := os.ReadFile(src)
		if err != nil {
			return "", "", err
		}
		return string(data), src, nil
	case strings.HasPrefix(model, "txnmgr:"):
		want := strings.TrimPrefix(model, "txnmgr:")
		for _, v := range []txnmgr.Variant{txnmgr.Correct, txnmgr.CommitWindow, txnmgr.DeleteWindow, txnmgr.CommitTwoWindows} {
			if v.String() == want {
				return txnmgr.Source(v), model, nil
			}
		}
		return "", "", fmt.Errorf("unknown txnmgr variant %q", want)
	case model != "":
		if src, ok := zing.Models()[model]; ok {
			return src, model, nil
		}
		names := []string{"txnmgr:correct", "txnmgr:commit-window", "txnmgr:delete-window", "txnmgr:commit-two-windows"}
		for name := range zing.Models() {
			names = append(names, name)
		}
		sort.Strings(names)
		return "", "", fmt.Errorf("unknown model %q (have %s)", model, strings.Join(names, ", "))
	}
	return "", "", fmt.Errorf("need -src file.zml or -model name")
}

func disassemble(p *zml.Program) {
	for _, g := range p.Globals {
		fmt.Printf("global %s %s slots=[%d,%d)\n", g.Type, g.Name, g.Slot, g.Slot+g.Slots)
	}
	for _, pr := range p.Procs {
		fmt.Printf("\nproc %s (params=%d, locals=%d):\n", pr.Name, pr.NumParams, pr.NumLocals)
		for i, in := range pr.Code {
			shared := " "
			if in.Op.Shared() {
				shared = "*"
			}
			fmt.Printf("  %3d %s %-12s %6d %6d   ; %s\n", i, shared, in.Op, in.A, in.B, in.Pos)
		}
	}
}
