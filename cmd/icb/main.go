// Command icb explores a benchmark program with a chosen search strategy
// and reports coverage, statistics, and any bugs found — the model-checker
// front end of the reproduction.
//
// Usage:
//
//	icb -prog wsq -bug steal-unlocked -strategy icb -bound 2
//	icb -prog dryad -bug alert-window -strategy icb -bound 1 -trace
//	icb -prog bluetooth -strategy dfs -execs 10000
//	icb -prog wsq -bug steal-unlocked -progress -events ev.ndjson -json
//	icb -prog wsq -bug steal-unlocked -http :8080 -repro-dir repro/
//	icb -replay repro/bug-001-assertion-failure
//	icb -list
//
// With -http, a live dashboard (per-bound progress bars, schedule-space
// estimates, SSE event stream) is served while the search runs. With
// -repro-dir, every found bug is persisted as a self-contained bundle that
// -replay verifies later: -replay accepts either a literal schedule
// ("t0 t1 t1 t0", requires -prog) or a bundle path (self-describing).
// Replaying a bundle exits 0 when the recorded bug reproduces and 1 when
// it does not.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"icb/internal/baseline"
	"icb/internal/core"
	"icb/internal/exper"
	"icb/internal/obs"
	"icb/internal/obs/coverage"
	"icb/internal/obs/dash"
	"icb/internal/obs/estimate"
	"icb/internal/obs/fleet"
	"icb/internal/obs/health"
	"icb/internal/obs/journal"
	"icb/internal/obs/logx"
	"icb/internal/obs/prof"
	"icb/internal/obs/repro"
	obstrace "icb/internal/obs/trace"
	"icb/internal/progs"
	"icb/internal/sched"
)

// exitInterrupted is the exit status of a run stopped by SIGINT/SIGTERM
// after a graceful flush (128 + SIGINT, the shell convention).
const exitInterrupted = 130

// log carries structured diagnostics to stderr (program output — results,
// progress, reports — keeps its own writers). Configured in run from the
// -log-json / -log-level flags.
var log = slog.Default()

func main() { os.Exit(run()) }

// run is main's body; returning (rather than os.Exit-ing) lets deferred
// cleanups — notably the NDJSON flush — run before the process exits.
func run() int {
	var (
		progName = flag.String("prog", "", "benchmark program: bluetooth, fsmodel, wsq, ape, dryad")
		bugID    = flag.String("bug", "", "seeded bug variant (default: the correct version); see -list")
		strategy = flag.String("strategy", "icb", "search strategy: icb, dfs, db:<N>, idfs, random, pct:<d>")
		bound    = flag.Int("bound", -1, "preemption bound for icb (-1 = run to exhaustion)")
		execs    = flag.Int("execs", 0, "execution budget (0 = unlimited)")
		cache    = flag.Bool("cache", false, "enable the Algorithm 1 work-item table (state caching)")
		bpor     = flag.Bool("bpor", false, "enable bounded partial-order reduction (sleep sets + targeted backtracking) for the icb strategy")
		noRaces  = flag.Bool("noraces", false, "disable the per-execution data-race detector")
		goldi    = flag.Bool("goldilocks", false, "use the Goldilocks lockset race detector")
		first    = flag.Bool("first", true, "stop at the first bug")
		trace    = flag.Bool("trace", false, "replay and print the first bug's schedule")
		minimize = flag.Bool("minimize", false, "shrink the first bug's schedule before reporting")
		replay   = flag.String("replay", "", "skip searching; replay this schedule (e.g. \"t0 t1 t1 t0\") or repro bundle path")
		every    = flag.Bool("everyaccess", false, "scheduling points at every shared access (no sync-only reduction)")
		list     = flag.Bool("list", false, "list benchmarks and bug variants")
		seed     = flag.Int64("seed", 1, "seed for the random strategy")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker engines for the icb strategy (1 = sequential reference search)")
		progress = flag.Bool("progress", false, "print live search progress to stderr")
		events   = flag.String("events", "", "write the structured event stream (NDJSON) to this file")
		jsonOut  = flag.Bool("json", false, "print the final result as JSON on stdout (human text goes to stderr)")
		swimlane = flag.Bool("swimlane", false, "replay the first bug and print a thread-per-column diagram")
		httpAddr = flag.String("http", "", "serve the live search dashboard on this address (e.g. :8080)")
		reproDir = flag.String("repro-dir", "", "write a self-contained repro bundle for every found bug under this directory")
		profile  = flag.Bool("profile", false, "attach the search profiler (phase timing, redundancy, time-to-first-bug)")
		profOut  = flag.String("profile-out", "", "write the final profiler snapshot as JSON to this file (implies -profile)")
		covFile  = flag.String("coverage", "", "merge this run's preemption-point coverage atlas into this JSON file")
		covDiff  = flag.String("coverage-diff", "", "skip searching; print what atlas NEW adds over atlas OLD (\"old.json,new.json\")")
		traceDir = flag.String("trace-dir", "", "write per-execution Chrome trace-event JSON (Perfetto) into this directory")
		jrnlDir  = flag.String("journal-dir", "", "durable campaign journal: checkpoints, event segments and the runs.ndjson ledger go under this directory")
		history  = flag.String("history", "", "comma-separated extra journal directories for the dashboard's campaign-history panel")
		resume   = flag.String("resume", "", "resume an interrupted campaign from this journal directory (config comes from its checkpoint)")
		ckEvery  = flag.Duration("checkpoint-every", 0, "periodic checkpoint interval with -journal-dir (default 2s; negative: barrier/final snapshots only)")
		hold     = flag.Bool("hold", false, "with -http: keep serving the dashboard after the search completes, until SIGINT/SIGTERM (fleet workers)")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	var lo logx.Options
	lo.Flags(flag.CommandLine)
	flag.Parse()
	log = logx.New("icb", lo)

	if *version {
		fmt.Println("icb", obs.BuildInfo())
		return 0
	}
	if *covDiff != "" {
		return coverageDiff(*covDiff)
	}

	// With -json, stdout carries exactly one JSON document; everything meant
	// for humans moves to stderr.
	human := io.Writer(os.Stdout)
	if *jsonOut {
		human = os.Stderr
	}

	if *list {
		listBenchmarks()
		return 0
	}

	// -resume restores an interrupted campaign: the checkpoint's metadata is
	// the configuration of record (a snapshot's replay schedules are only
	// meaningful against the exact program and flags that produced them), so
	// it overrides any search flags given alongside.
	var resumeCk *journal.Checkpoint
	if *resume != "" {
		ck, err := journal.LoadCheckpoint(*resume)
		if err != nil {
			log.Error("resume failed", "dir", *resume, "err", err)
			return 2
		}
		if ck.Completed() {
			fmt.Fprintf(human, "campaign in %s already ran to completion (run %s: %d executions, %d bugs); nothing to resume\n",
				*resume, ck.RunID, ck.State.Result.Executions, len(ck.State.Result.Bugs))
			if len(ck.State.Result.Bugs) > 0 {
				return 1
			}
			return 0
		}
		resumeCk = ck
		m := ck.Meta
		*progName, *bugID, *strategy = m.Program, m.Bug, m.Strategy
		*bound, *execs, *seed, *workers = m.MaxBound, m.MaxExecutions, m.Seed, m.Workers
		*cache, *noRaces, *goldi = m.StateCache, !m.CheckRaces, m.Goldilocks
		*every, *first, *bpor = m.EveryAccess, m.FirstBug, m.BPOR
		*jrnlDir = *resume
		fmt.Fprintf(human, "resuming campaign %s: run %s stopped at bound %d after %d executions (%d seeds + %d deferred remaining)\n",
			*resume, ck.RunID, ck.State.Bound, ck.State.Result.Executions,
			len(ck.State.SeedQueue), len(ck.State.NextWork))
	}

	// -replay with a path is a repro bundle: it names its own program and
	// bug variant, so -prog/-bug come from the manifest.
	var bundle *repro.Bundle
	if *replay != "" {
		if _, statErr := os.Stat(*replay); statErr == nil {
			var err error
			if bundle, err = repro.Load(*replay); err != nil {
				log.Error("repro bundle load failed", "path", *replay, "err", err)
				return 2
			}
			*progName = bundle.Meta.Program
			*bugID = bundle.Meta.BugVariant
		}
	}

	b := findBenchmark(*progName)
	if b == nil {
		log.Error("unknown program; use -list", "prog", *progName)
		return 2
	}
	prog := b.Correct
	if *bugID != "" {
		bug := b.FindBug(*bugID)
		if bug == nil {
			log.Error("unknown bug variant; use -list", "prog", b.Name, "bug", *bugID)
			return 2
		}
		prog = bug.Program
		fmt.Fprintf(human, "checking %s with seeded bug %q (documented bound %d)\n", b.Name, bug.ID, bug.Bound)
	} else {
		fmt.Fprintf(human, "checking %s (correct version)\n", b.Name)
	}

	if bundle != nil {
		return replayBundle(bundle, prog, human, *trace)
	}
	if *replay != "" {
		schedule, err := sched.ParseSchedule(*replay)
		if err != nil {
			log.Error("bad replay schedule", "err", err)
			return 2
		}
		mode := sched.ModeSyncOnly
		if *every {
			mode = sched.ModeEveryAccess
		}
		out := sched.Run(prog,
			&sched.ReplayController{Prefix: schedule, Tail: sched.FirstEnabled{}},
			sched.Config{RecordTrace: *trace, Mode: mode})
		if *trace {
			for _, line := range out.TraceStrings() {
				fmt.Printf("  %s\n", line)
			}
		}
		fmt.Printf("replay outcome: %s\n", out)
		if out.Status.Buggy() {
			return 1
		}
		return 0
	}

	strat, err := parseStrategy(*strategy, *seed, *workers)
	if err != nil {
		log.Error("bad strategy", "err", err)
		return 2
	}
	opt := core.Options{
		MaxPreemptions: *bound,
		MaxExecutions:  *execs,
		CheckRaces:     !*noRaces,
		UseGoldilocks:  *goldi,
		StopOnFirstBug: *first,
		StateCache:     *cache,
		BPOR:           *bpor,
	}
	if *every {
		opt.Mode = sched.ModeEveryAccess
	}
	// The stop flag is always wired so SIGINT/SIGTERM end any strategy at
	// the next execution boundary instead of killing the process mid-write.
	stop := &atomic.Bool{}
	opt.Stop = stop
	if resumeCk != nil {
		opt.Resume = &resumeCk.State
		if err := core.ValidateResume(&resumeCk.State, opt); err != nil {
			log.Error("resume validation failed", "err", err)
			return 2
		}
		// The stealing and sequential schedulers write incompatible frontier
		// snapshots; the resolved worker count decides which one runs.
		effWorkers := 1
		if _, ok := strat.(core.ParallelICB); ok {
			effWorkers = *workers
		}
		if err := core.ValidateResumeWorkers(&resumeCk.State, effWorkers); err != nil {
			log.Error("resume validation failed", "err", err)
			return 2
		}
	}
	var prf *prof.Profiler
	if *profile || *profOut != "" {
		prf = prof.New(0)
		opt.Profiler = prf
	}

	var cov *coverage.Recorder
	if *covFile != "" || *httpAddr != "" || *jrnlDir != "" {
		// The atlas backs the -coverage store, the dashboard's heatmap panel
		// and the journal's cross-run atlas, so it is attached whenever any
		// of those consumers is on.
		cov = coverage.NewRecorder(*progName)
		opt.Coverage = cov
	}
	var tw *obstrace.DirWriter
	if *traceDir != "" {
		tw = &obstrace.DirWriter{Dir: *traceDir, Label: *progName}
		opt.TraceObserver = tw
	}

	var sinks []obs.Sink
	// The schedule-space estimator backs both the progress line's
	// "% explored, ETA" suffix and the dashboard, so it is attached
	// whenever either consumer is on.
	var est *estimate.Estimator
	if *progress || *httpAddr != "" {
		est = estimate.New()
		opt.Estimator = est
		sinks = append(sinks, est)
	}
	if *progress {
		p := obs.NewProgress(os.Stderr, 0)
		p.SetEstimator(est)
		sinks = append(sinks, p)
	}
	var nd *obs.NDJSON
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			log.Error("cannot create events file", "path", *events, "err", err)
			return 2
		}
		nd = obs.NewNDJSON(f)
		defer func() {
			if err := nd.Close(); err != nil {
				log.Error("event stream flush failed", "err", err)
			}
			f.Close()
		}()
		sinks = append(sinks, nd)
	}
	// The live counter set backs both the dashboard and the journal's
	// per-checkpoint metric snapshots.
	var met *obs.Metrics
	if *httpAddr != "" || *jrnlDir != "" {
		met = &obs.Metrics{}
		if est != nil {
			met.SetEstimator(est)
		}
		if cov != nil {
			met.SetCoverage(cov)
		}
		opt.Metrics = met
	}
	// The health probe rides the event stream whenever an HTTP surface
	// exists to serve it.
	var probe *health.Probe
	var dashURL string
	if *httpAddr != "" {
		ds := dash.New(met)
		var jdirs []string
		if *jrnlDir != "" {
			jdirs = append(jdirs, *jrnlDir)
		}
		for _, d := range strings.Split(*history, ",") {
			if d = strings.TrimSpace(d); d != "" && d != *jrnlDir {
				jdirs = append(jdirs, d)
			}
		}
		ds.SetJournalDirs(jdirs)
		sinks = append(sinks, ds.Sink())
		probe = health.New(0)
		probe.AddReadyCheck(health.CheckWritable(*jrnlDir))
		ds.Mount("/healthz", probe.Healthz())
		ds.Mount("/readyz", probe.Readyz())
		sinks = append(sinks, probe)
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Error("dashboard listen failed", "addr", *httpAddr, "err", err)
			return 2
		}
		dashURL = fleet.BaseURL(ln.Addr().String())
		srv := &http.Server{Handler: ds.Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Error("dashboard server failed", "err", err)
			}
		}()
		log.Info("dashboard serving", "url", dashURL)
		defer func() {
			// Graceful drain with a deadline: lingering SSE streams must
			// not keep a finished search alive.
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}
	var jw *journal.Writer
	if *jrnlDir != "" {
		metaWorkers := 1
		if *strategy == "icb" {
			metaWorkers = *workers
		}
		jcfg := journal.Config{
			Dir: *jrnlDir,
			Meta: journal.Meta{
				Program: *progName, Bug: *bugID, Strategy: *strategy,
				Workers: metaWorkers, MaxBound: *bound, MaxExecutions: *execs,
				Seed: *seed, StateCache: *cache, CheckRaces: !*noRaces,
				Goldilocks: *goldi, EveryAccess: *every, FirstBug: *first,
				BPOR: *bpor,
			},
			Every:   *ckEvery,
			Metrics: met,
		}
		if resumeCk != nil {
			jcfg.ParentRunID = resumeCk.RunID
		}
		if prf != nil {
			jcfg.Profile = prf
		}
		var err error
		if jw, err = journal.New(jcfg); err != nil {
			log.Error("journal open failed", "dir", *jrnlDir, "err", err)
			return 2
		}
		defer func() {
			if err := jw.Close(); err != nil {
				log.Error("journal close failed", "err", err)
			}
		}()
		opt.Checkpoint = jw
		sinks = append(sinks, jw)
		// Every further record names the run, so fleet-wide log streams
		// attribute lines to workers.
		log = log.With("run", jw.RunID())
		fmt.Fprintf(human, "journal: %s (run %s)\n", *jrnlDir, jw.RunID())
	}
	// A worker that both journals and serves HTTP advertises itself for
	// file-based fleet discovery: icb-campaign serve -journal-dir <dir>
	// finds it without an explicit -peers list.
	if dashURL != "" && *jrnlDir != "" {
		runID := ""
		if jw != nil {
			runID = jw.RunID()
		}
		unadvertise, err := fleet.Advertise(*jrnlDir, runID, dashURL)
		if err != nil {
			log.Warn("fleet advertise failed", "dir", *jrnlDir, "err", err)
		} else {
			defer unadvertise()
			log.Info("advertised to fleet", "dir", *jrnlDir, "url", dashURL)
		}
	}
	var rw *repro.Writer
	if *reproDir != "" {
		rw = repro.NewWriter(*reproDir, prog,
			repro.NewMeta(*progName, *bugID, *strategy, *seed, opt))
		if prf != nil {
			rw.SetProfile(prf)
		}
		sinks = append(sinks, rw)
	}
	opt.Sink = obs.Multi(sinks...)
	if resumeCk != nil {
		opt.Sink.Resumed(obs.ResumeEvent{
			Dir:         *resume,
			ParentRunID: resumeCk.RunID,
			Bound:       resumeCk.State.Bound,
			Executions:  resumeCk.State.Result.Executions,
			Bugs:        len(resumeCk.State.Result.Bugs),
			SeedQueue:   len(resumeCk.State.SeedQueue),
			NextWork:    len(resumeCk.State.NextWork),
		})
	}

	// First signal: graceful stop — the strategy checkpoints and returns, the
	// journal and event stream flush, and the process exits 130. Second
	// signal: force quit.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	var interrupted atomic.Bool
	sigReceived := make(chan struct{})
	go func() {
		s := <-sigc
		interrupted.Store(true)
		stop.Store(true)
		close(sigReceived)
		log.Warn("stopping at the next execution boundary (repeat to force quit)", "signal", s.String())
		<-sigc
		os.Exit(exitInterrupted)
	}()

	if probe != nil {
		probe.MarkStarted()
	}

	res := core.Explore(prog, strat, opt)
	if jw != nil {
		rec := journal.BuildRunRecord(res)
		rec.Interrupted = interrupted.Load()
		if cov != nil {
			runAtlas := cov.Atlas()
			merged, added, err := coverage.MergeFile(filepath.Join(*jrnlDir, journal.AtlasName), runAtlas)
			if err != nil {
				log.Error("journal atlas merge failed", "err", err)
			} else {
				rec.AtlasSites = coverage.Summarize(merged).Sites
				rec.AtlasNewSites = added
			}
		}
		if err := jw.FinishRun(rec); err != nil {
			log.Error("journal run record failed", "err", err)
		}
	}
	if cov != nil && *covFile != "" {
		run := cov.Atlas()
		merged, added, err := coverage.MergeFile(*covFile, run)
		if err != nil {
			log.Error("coverage merge failed", "file", *covFile, "err", err)
			return 2
		}
		rs, ms := coverage.Summarize(run), coverage.Summarize(merged)
		fmt.Fprintf(human, "coverage atlas: this run reached %d sites (%d preemption sites); %s now holds %d sites (+%d new)\n",
			rs.Sites, rs.PSites, *covFile, ms.Sites, added)
	}
	if tw != nil {
		if err := tw.Err(); err != nil {
			log.Error("trace writer failed", "err", err)
		}
		written, skipped := tw.Written()
		fmt.Fprintf(human, "traces: %d written to %s", written, *traceDir)
		if skipped > 0 {
			fmt.Fprintf(human, " (%d further executions skipped by the %d-file cap)", skipped, obstrace.DefaultMaxFiles)
		}
		fmt.Fprintln(human)
	}
	if rw != nil {
		if err := rw.Err(); err != nil {
			log.Error("repro writer failed", "err", err)
		}
		for _, p := range rw.Bundles() {
			fmt.Fprintf(human, "repro bundle: %s\n", p)
		}
	}
	if prf != nil {
		data := prf.Profile()
		if *profOut != "" {
			js, err := json.MarshalIndent(data, "", "  ")
			if err != nil {
				log.Error("profile encoding failed", "err", err)
				return 2
			}
			if err := os.WriteFile(*profOut, append(js, '\n'), 0o644); err != nil {
				log.Error("profile write failed", "path", *profOut, "err", err)
				return 2
			}
			fmt.Fprintf(human, "profile: wrote %s\n", *profOut)
		}
		printProfile(human, data)
	}
	if bug := res.FirstBug(); bug != nil && *minimize {
		min := core.MinimizeSchedule(prog, bug.Schedule, opt)
		fmt.Fprintf(human, "minimized schedule: %d -> %d decisions\n", len(bug.Schedule), len(min))
		bug.Schedule = min
	}
	if *jsonOut {
		doc := jsonResult(res)
		if prf != nil {
			doc["profile"] = prf.Profile()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Error("result encoding failed", "err", err)
			return 2
		}
	} else {
		printResult(res)
	}

	if bug := res.FirstBug(); bug != nil && (*trace || *swimlane) {
		out := sched.Run(prog,
			&sched.ReplayController{Prefix: bug.Schedule, Tail: sched.FirstEnabled{}},
			sched.Config{RecordTrace: true, Mode: opt.Mode})
		if *trace {
			fmt.Fprintln(human, "\nreplaying the bug schedule:")
			for _, line := range out.TraceStrings() {
				fmt.Fprintf(human, "  %s\n", line)
			}
			fmt.Fprintf(human, "replay outcome: %s\n", out)
		}
		if *swimlane {
			fmt.Fprintln(human)
			fmt.Fprint(human, sched.Swimlane(out))
		}
	}
	// -hold keeps a fleet worker's telemetry surface up after its search
	// budget completes, so the aggregator and scrapers read final counters
	// instead of connection-refused. A signal releases it (and is the
	// normal fleet shutdown, so it does not count as an interruption).
	if *hold && *httpAddr != "" {
		log.Info("search complete; holding dashboard until signal (-hold)")
		<-sigReceived
	} else if interrupted.Load() {
		return exitInterrupted
	}
	if len(res.Bugs) > 0 {
		return 1
	}
	return 0
}

// replayBundle feeds a repro bundle's schedule back through the replay
// controller under the recorded search semantics, prints the re-rendered
// swimlane, and verifies the recorded bug reproduces (also diffing the
// swimlane against the bundled rendering). Exit status: 0 when the bug
// reproduces, 1 when it does not.
func replayBundle(b *repro.Bundle, prog sched.Program, human io.Writer, trace bool) int {
	fmt.Fprintf(human, "replaying bundle %s\n", b.Dir)
	fmt.Fprintf(human, "recorded bug: %s: %s (%d preemptions, execution #%d)\n",
		b.Bug.Kind, b.Bug.Message, b.Bug.Preemptions, b.Bug.Execution)
	r := repro.Replay(b, prog)
	if trace {
		for _, line := range r.Outcome.TraceStrings() {
			fmt.Fprintf(human, "  %s\n", line)
		}
	}
	fmt.Fprint(human, r.Swimlane)
	if !r.Reproduced() {
		fmt.Printf("NOT REPRODUCED: replay outcome %s, bugs %d\n", r.Outcome, len(r.Bugs))
		return 1
	}
	fmt.Printf("reproduced: %s\n", r.Match.String())
	if lane, err := os.ReadFile(b.SwimlanePath()); err == nil {
		if string(lane) == r.Swimlane {
			fmt.Println("swimlane matches the bundled rendering")
		} else {
			fmt.Println("WARNING: swimlane differs from the bundled rendering")
			return 1
		}
	}
	return 0
}

// coverageDiff implements -coverage-diff: given "old.json,new.json" it
// prints every site, bound and next-thread choice the new atlas covers that
// the old one does not. Exit status: 0 when new adds nothing, 1 when it
// does (so scripts can gate on "did this campaign advance the frontier"),
// 2 on usage or I/O errors.
func coverageDiff(arg string) int {
	oldPath, newPath, ok := strings.Cut(arg, ",")
	if !ok || oldPath == "" || newPath == "" {
		log.Error(`-coverage-diff wants "old.json,new.json"`)
		return 2
	}
	oldA, err := coverage.Load(oldPath)
	if err != nil {
		log.Error("atlas load failed", "path", oldPath, "err", err)
		return 2
	}
	newA, err := coverage.Load(newPath)
	if err != nil {
		log.Error("atlas load failed", "path", newPath, "err", err)
		return 2
	}
	d := coverage.Diff(oldA, newA)
	if len(d.Sites) == 0 {
		fmt.Printf("%s adds no coverage over %s\n", newPath, oldPath)
		return 0
	}
	fmt.Printf("%s adds coverage at %d sites over %s:\n", newPath, len(d.Sites), oldPath)
	for _, s := range d.Sites {
		for _, bc := range s.Bounds {
			fmt.Printf("+ %s %s %q @%s: bound=%d reached=%d preempted=%d choices=%s\n",
				s.Program, s.Kind, s.Loc, s.Thread,
				bc.Bound, bc.Reached, bc.Preempted, strings.Join(bc.Choices, ","))
		}
	}
	return 1
}

// jsonResult shapes a core.Result for -json output: schedules become their
// compact string form ("t0 t1 ...") instead of decision-struct arrays.
func jsonResult(res core.Result) map[string]any {
	bugs := make([]map[string]any, 0, len(res.Bugs))
	for i := range res.Bugs {
		b := &res.Bugs[i]
		bugs = append(bugs, map[string]any{
			"kind":             b.Kind.String(),
			"message":          b.Message,
			"preemptions":      b.Preemptions,
			"context_switches": b.ContextSwitches,
			"steps":            b.Steps,
			"execution":        b.Execution,
			"schedule":         b.Schedule.String(),
			"count":            b.Count,
		})
	}
	bounds := make([]map[string]any, 0, len(res.BoundStats))
	for _, bs := range res.BoundStats {
		bounds = append(bounds, map[string]any{
			"bound":          bs.Bound,
			"executions":     bs.Executions,
			"cum_executions": bs.CumExecutions,
			"states":         bs.States,
			"duration_ms":    float64(bs.Duration.Microseconds()) / 1e3,
		})
	}
	return map[string]any{
		"strategy":          res.Strategy,
		"executions":        res.Executions,
		"states":            res.States,
		"execution_classes": res.ExecutionClasses,
		"max_steps":         res.MaxSteps,
		"max_blocking":      res.MaxBlocking,
		"max_preemptions":   res.MaxPreemptions,
		"bound_completed":   res.BoundCompleted,
		"exhausted":         res.Exhausted,
		"duration_ms":       float64(res.Duration.Microseconds()) / 1e3,
		"cache_hits":        res.CacheHits,
		"cache_misses":      res.CacheMisses,
		"bpor":              res.BPOR,
		"bpor_pruned":       res.BPORPruned,
		"bound_stats":       bounds,
		"bugs":              bugs,
	}
}

func listBenchmarks() {
	for _, b := range exper.Benchmarks() {
		fmt.Printf("%-22s threads=%d bugs:\n", b.Name, b.Threads)
		for _, bug := range b.Bugs {
			fmt.Printf("  -bug %-24s bound=%d kind=%s\n      %s\n", bug.ID, bug.Bound, bug.Kind, bug.Description)
		}
	}
	fmt.Println("\n(the transaction manager is a ZML model; use the zingi command)")
}

func findBenchmark(name string) *progs.Benchmark {
	aliases := map[string]int{
		"bluetooth": 0, "fsmodel": 1, "wsq": 2, "ape": 3, "dryad": 4,
	}
	i, ok := aliases[strings.ToLower(name)]
	if !ok {
		return nil
	}
	return exper.Benchmarks()[i]
}

func parseStrategy(s string, seed int64, workers int) (core.Strategy, error) {
	switch {
	case s == "icb":
		if workers > 1 {
			return core.ParallelICB{Workers: workers}, nil
		}
		return core.ICB{}, nil
	case s == "dfs":
		return baseline.DFS{}, nil
	case s == "idfs":
		return baseline.IDFS{}, nil
	case s == "random":
		return baseline.Random{Seed: seed}, nil
	case s == "pct":
		return baseline.PCT{Depth: 2, Seed: seed}, nil
	case strings.HasPrefix(s, "pct:"):
		d, err := strconv.Atoi(s[4:])
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad pct depth %q", s)
		}
		return baseline.PCT{Depth: d, Seed: seed}, nil
	case strings.HasPrefix(s, "db:"):
		n, err := strconv.Atoi(s[3:])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad depth bound %q", s)
		}
		return baseline.DFS{Depth: n}, nil
	}
	return nil, fmt.Errorf("unknown strategy %q (want icb, dfs, db:<N>, idfs, random, pct:<d>)", s)
}

// printProfile renders a compact human summary of the profiler snapshot:
// the replay/explore wall-clock split, per-bound redundancy, worker
// contention (parallel searches only), and each distinct bug's
// time-to-first-sighting.
func printProfile(w io.Writer, d obs.ProfileData) {
	var replay, explore int64
	for _, p := range d.Phases {
		switch p.Phase {
		case obs.PhaseReplay:
			replay = p.NS
		case obs.PhaseExplore:
			explore = p.NS
		}
	}
	if total := replay + explore; total > 0 {
		fmt.Fprintf(w, "profile: replay %.1f%% / explore %.1f%% of %.1f ms execution time (sampled phases 1-in-%d)\n",
			100*float64(replay)/float64(total), 100*float64(explore)/float64(total),
			float64(total)/1e6, d.SampleEvery)
	}
	for _, b := range d.Bounds {
		fmt.Fprintf(w, "profile: bound %d: %d execs, %d new classes (%.1f%% redundant), %.1f ms\n",
			b.Bound, b.Executions, b.NewClasses, 100*b.RedundantFrac, float64(b.DurationNS)/1e6)
	}
	for _, wk := range d.Workers {
		fmt.Fprintf(w, "profile: worker %d: state-set waits %d (%.2f ms), table waits %d (%.2f ms), barrier %.2f ms, steals %d (%d failed), idle %.2f ms, fetch stalls %d\n",
			wk.Worker, wk.StateLockWaits, float64(wk.StateLockWaitNS)/1e6,
			wk.TableLockWaits, float64(wk.TableLockWaitNS)/1e6,
			float64(wk.BarrierWaitNS)/1e6, wk.Steals, wk.StealFails,
			float64(wk.IdleNS)/1e6, wk.FetchStalls)
	}
	for _, fb := range d.FirstBugs {
		fmt.Fprintf(w, "profile: first sighting of %s %q: execution %d, bound %d, %.2f ms\n",
			fb.Kind, fb.Message, fb.Execution, fb.Bound, float64(fb.TNS)/1e6)
	}
}

func printResult(res core.Result) {
	fmt.Printf("strategy=%s executions=%d states=%d classes=%d exhausted=%v\n",
		res.Strategy, res.Executions, res.States, res.ExecutionClasses, res.Exhausted)
	fmt.Printf("maxK=%d maxB=%d maxPreemptions=%d boundCompleted=%d\n",
		res.MaxSteps, res.MaxBlocking, res.MaxPreemptions, res.BoundCompleted)
	if res.BPOR {
		fmt.Printf("bpor: on, %d work items pruned\n", res.BPORPruned)
	}
	if len(res.Bugs) == 0 {
		if res.BoundCompleted >= 0 {
			fmt.Printf("no bugs: every execution with at most %d preemptions is correct\n", res.BoundCompleted)
		} else {
			fmt.Println("no bugs found")
		}
		return
	}
	for i := range res.Bugs {
		fmt.Printf("BUG: %s\n", res.Bugs[i].String())
		fmt.Printf("     schedule: %s\n", res.Bugs[i].Schedule)
	}
}
