package main

import (
	"strings"
	"testing"
)

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in      string
		workers int
		name    string
	}{
		{"icb", 1, "icb"},
		{"icb", 4, "icb-w4"},
		{"dfs", 1, "dfs"},
		{"dfs", 4, "dfs"}, // -workers only parallelizes the icb strategy
		{"db:25", 1, "db:25"},
		{"idfs", 1, "idfs:20+20"},
		{"random", 1, "random"},
	} {
		s, err := parseStrategy(tc.in, 1, tc.workers)
		if err != nil {
			t.Fatalf("parseStrategy(%q): %v", tc.in, err)
		}
		if s.Name() != tc.name {
			t.Fatalf("parseStrategy(%q).Name() = %q, want %q", tc.in, s.Name(), tc.name)
		}
	}
	for _, bad := range []string{"", "db:", "db:x", "db:-1", "bfs"} {
		if _, err := parseStrategy(bad, 1, 1); err == nil {
			t.Fatalf("parseStrategy(%q) succeeded", bad)
		}
	}
}

func TestFindBenchmark(t *testing.T) {
	for _, name := range []string{"bluetooth", "fsmodel", "wsq", "ape", "dryad", "WSQ"} {
		if findBenchmark(name) == nil {
			t.Fatalf("findBenchmark(%q) = nil", name)
		}
	}
	if findBenchmark("nope") != nil {
		t.Fatal("unknown benchmark resolved")
	}
}

func TestBenchmarkBugIDsResolvable(t *testing.T) {
	// Every -bug value printed by -list must resolve via FindBug.
	for _, name := range []string{"bluetooth", "fsmodel", "wsq", "ape", "dryad"} {
		b := findBenchmark(name)
		for _, bug := range b.Bugs {
			if b.FindBug(bug.ID) == nil {
				t.Fatalf("%s: bug %q not resolvable", name, bug.ID)
			}
			if !strings.Contains(bug.Kind, " ") && bug.Kind != "deadlock" {
				t.Fatalf("%s/%s: unexpected kind %q", name, bug.ID, bug.Kind)
			}
		}
	}
}
