// Command icb-fuzz runs the differential fuzzing harness: it generates
// random small modeled programs, brute-forces their complete schedule
// space as ground truth, and cross-checks every search strategy (ICB,
// DFS, CSB, parallel ICB, cache on/off, replay, minimization, both race
// detectors) against it. Any violated property is shrunk to a minimal
// program and persisted as a repro artifact.
//
// Usage:
//
//	icb-fuzz -seed 1 -n 500            # fixed-size deterministic campaign
//	icb-fuzz -seed 1 -duration 55s     # time-boxed campaign (CI smoke)
//	icb-fuzz -duration 10m -out art/   # nightly: time-derived seed, artifacts
//	icb-fuzz -n 200 -events fuzz.ndjson -profile
//
// With -events, campaign progress (programs checked, oracle exec rate,
// skip counts, discrepancies) streams to the same NDJSON event format the
// search binaries write; with -profile, a search profiler aggregates every
// strategy exploration of the campaign and its final snapshot joins that
// stream.
//
// The process exits 1 when any discrepancy was found, 0 on a clean run.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"icb/internal/fuzz"
	"icb/internal/obs"
	"icb/internal/obs/dash"
	"icb/internal/obs/health"
	"icb/internal/obs/journal"
	"icb/internal/obs/logx"
	"icb/internal/obs/prof"
)

// log carries structured diagnostics to stderr; campaign summaries and
// discrepancy reports remain program output. Configured in run from
// -log-json / -log-level.
var log = slog.Default()

// exitInterrupted is the exit status of a campaign stopped by
// SIGINT/SIGTERM after a graceful flush (128 + SIGINT).
const exitInterrupted = 130

func main() { os.Exit(run()) }

// run is main's body; returning (rather than os.Exit-ing) lets deferred
// cleanups — notably the NDJSON flush — run before the process exits.
func run() int {
	var (
		seed     = flag.Int64("seed", 0, "first generator seed; 0 derives one from the clock (printed for reruns)")
		n        = flag.Int("n", 500, "number of programs to check (ignored with -duration)")
		duration = flag.Duration("duration", 0, "run until this much wall time has passed instead of counting to -n")
		out      = flag.String("out", "", "directory for discrepancy artifacts (specs, reports, repro bundles)")
		maxExecs = flag.Int("oracle-max-execs", 0, "per-program oracle execution cap (default 6000); bigger programs are skipped")
		quiet    = flag.Bool("q", false, "suppress progress output (discrepancies still print)")
		events   = flag.String("events", "", "write the structured campaign event stream (NDJSON) to this file")
		profile  = flag.Bool("profile", false, "attach the search profiler across all strategy runs; the final snapshot joins the event stream and prints at exit")
		jrnlDir  = flag.String("journal-dir", "", "append this campaign's run record (and event segment) to the journal under this directory")
		httpAddr = flag.String("http", "", "serve the live campaign dashboard (and /metrics, /healthz, /readyz) on this address")
	)
	var lo logx.Options
	lo.Flags(flag.CommandLine)
	flag.Parse()
	log = logx.New("icb-fuzz", lo)
	if flag.NArg() > 0 {
		log.Error("unexpected arguments", "args", fmt.Sprint(flag.Args()))
		return 2
	}

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	cfg := fuzz.CampaignConfig{
		Seed:     *seed,
		N:        *n,
		Duration: *duration,
		OutDir:   *out,
		Limits:   fuzz.Limits{MaxExecutions: *maxExecs},
		Log:      os.Stderr,
	}
	if *quiet {
		cfg.Log = nil
	}
	var prf *prof.Profiler
	if *profile {
		prf = prof.New(0)
		cfg.Limits.Profiler = prf
	}
	var sinks []obs.Sink
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			log.Error("cannot create events file", "path", *events, "err", err)
			return 2
		}
		nd := obs.NewNDJSON(f)
		defer func() {
			if err := nd.Close(); err != nil {
				log.Error("event stream flush failed", "err", err)
			}
			f.Close()
		}()
		sinks = append(sinks, nd)
	}
	var probe *health.Probe
	if *httpAddr != "" {
		// The fuzzer has no engine-side Metrics; a bridge sink mirrors the
		// periodic campaign progress into one so /api/snapshot and /metrics
		// read live counters (oracle executions; discrepancies as bugs).
		met := &obs.Metrics{}
		sinks = append(sinks, campaignMetrics{met: met})
		ds := dash.New(met)
		sinks = append(sinks, ds.Sink())
		probe = health.New(0)
		probe.AddReadyCheck(health.CheckWritable(*jrnlDir))
		ds.Mount("/healthz", probe.Healthz())
		ds.Mount("/readyz", probe.Readyz())
		sinks = append(sinks, probe)
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Error("dashboard listen failed", "addr", *httpAddr, "err", err)
			return 2
		}
		srv := &http.Server{Handler: ds.Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Error("dashboard server failed", "err", err)
			}
		}()
		log.Info("dashboard serving", "url", fmt.Sprintf("http://%s/", ln.Addr()))
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}
	var jw *journal.Writer
	if *jrnlDir != "" {
		var err error
		jw, err = journal.New(journal.Config{
			Dir:   *jrnlDir,
			Meta:  journal.Meta{Program: "fuzz", Strategy: "fuzz", Workers: 1, MaxBound: -1, Seed: *seed},
			Every: -1, // no search state to checkpoint; ledger + segment only
		})
		if err != nil {
			log.Error("journal open failed", "dir", *jrnlDir, "err", err)
			return 2
		}
		defer func() {
			if err := jw.Close(); err != nil {
				log.Error("journal close failed", "err", err)
			}
		}()
		log = log.With("run", jw.RunID())
		sinks = append(sinks, jw)
	}
	if len(sinks) > 0 {
		cfg.Sink = obs.Multi(sinks...)
	}

	// First signal: graceful stop at the next program boundary — stats,
	// event stream and the journal ledger still flush; exit 130. Second
	// signal: force quit.
	stop := &atomic.Bool{}
	cfg.Stop = stop
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	var interrupted atomic.Bool
	go func() {
		s := <-sigc
		interrupted.Store(true)
		stop.Store(true)
		log.Warn("finishing the current program and flushing (repeat to force quit)", "signal", s.String())
		<-sigc
		os.Exit(exitInterrupted)
	}()

	if *duration > 0 {
		log.Info("campaign starting", "seed", *seed, "duration", duration.String())
	} else {
		log.Info("campaign starting", "seed", *seed, "n", *n)
	}
	if probe != nil {
		probe.MarkStarted()
	}

	stats, err := fuzz.Campaign(cfg)
	if err != nil {
		log.Error("campaign failed", "err", err)
		return 1
	}
	fmt.Print(stats.Summary())
	if jw != nil {
		// Fuzz campaigns join the same cross-run ledger the search binaries
		// use: executions are the oracle's, and discrepancies play the bug
		// role so icb-campaign diff flags a newly discrepant strategy.
		rec := &obs.RunRecord{
			DurationNS:     stats.Duration.Nanoseconds(),
			Executions:     stats.Executions,
			Interrupted:    interrupted.Load(),
			BoundCompleted: -1,
		}
		for _, d := range stats.Discrepancies {
			rec.Bugs = append(rec.Bugs, obs.RunBug{Kind: d.Property, Message: d.Detail})
		}
		if err := jw.FinishRun(rec); err != nil {
			log.Error("journal run record failed", "err", err)
		}
	}
	if prf != nil {
		d := prf.Profile()
		var total int64
		for _, p := range d.Phases {
			if p.Phase == obs.PhaseReplay || p.Phase == obs.PhaseExplore {
				total += p.NS
			}
		}
		fmt.Printf("profiler: %.1f ms of strategy execution time across the campaign (sampled phases 1-in-%d)\n",
			float64(total)/1e6, d.SampleEvery)
	}
	if !stats.Clean() {
		log.Error("discrepancies found", "count", len(stats.Discrepancies), "seed", *seed)
		if *out != "" {
			log.Info("artifacts written", "dir", *out)
		}
		return 1
	}
	if interrupted.Load() {
		return exitInterrupted
	}
	return 0
}

// campaignMetrics bridges the periodic CampaignProgress events into an
// obs.Metrics so the dashboard and /metrics track a fuzz campaign: the
// oracle's enumerated executions play the execution counter, strategy
// discrepancies play the bug counter.
type campaignMetrics struct {
	obs.Nop
	met *obs.Metrics
}

// CampaignProgress implements obs.Sink.
func (c campaignMetrics) CampaignProgress(ev obs.CampaignEvent) {
	c.met.Executions.Store(ev.Executions)
	c.met.Bugs.Store(int64(ev.Discrepancies))
}
