// Command icb-fuzz runs the differential fuzzing harness: it generates
// random small modeled programs, brute-forces their complete schedule
// space as ground truth, and cross-checks every search strategy (ICB,
// DFS, CSB, parallel ICB, cache on/off, replay, minimization, both race
// detectors) against it. Any violated property is shrunk to a minimal
// program and persisted as a repro artifact.
//
// Usage:
//
//	icb-fuzz -seed 1 -n 500            # fixed-size deterministic campaign
//	icb-fuzz -seed 1 -duration 55s     # time-boxed campaign (CI smoke)
//	icb-fuzz -duration 10m -out art/   # nightly: time-derived seed, artifacts
//
// The process exits 1 when any discrepancy was found, 0 on a clean run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"icb/internal/fuzz"
)

func main() {
	var (
		seed     = flag.Int64("seed", 0, "first generator seed; 0 derives one from the clock (printed for reruns)")
		n        = flag.Int("n", 500, "number of programs to check (ignored with -duration)")
		duration = flag.Duration("duration", 0, "run until this much wall time has passed instead of counting to -n")
		out      = flag.String("out", "", "directory for discrepancy artifacts (specs, reports, repro bundles)")
		maxExecs = flag.Int("oracle-max-execs", 0, "per-program oracle execution cap (default 6000); bigger programs are skipped")
		quiet    = flag.Bool("q", false, "suppress progress output (discrepancies still print)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "icb-fuzz: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	cfg := fuzz.CampaignConfig{
		Seed:     *seed,
		N:        *n,
		Duration: *duration,
		OutDir:   *out,
		Limits:   fuzz.Limits{MaxExecutions: *maxExecs},
		Log:      os.Stderr,
	}
	if *quiet {
		cfg.Log = nil
	}

	fmt.Fprintf(os.Stderr, "icb-fuzz: seed=%d", *seed)
	if *duration > 0 {
		fmt.Fprintf(os.Stderr, " duration=%s\n", *duration)
	} else {
		fmt.Fprintf(os.Stderr, " n=%d\n", *n)
	}

	stats, err := fuzz.Campaign(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icb-fuzz: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(stats.Summary())
	if !stats.Clean() {
		fmt.Fprintf(os.Stderr, "icb-fuzz: %d discrepancies (seed %d)\n", len(stats.Discrepancies), *seed)
		if *out != "" {
			fmt.Fprintf(os.Stderr, "icb-fuzz: artifacts under %s\n", *out)
		}
		os.Exit(1)
	}
}
