// Command icb-fuzz runs the differential fuzzing harness: it generates
// random small modeled programs, brute-forces their complete schedule
// space as ground truth, and cross-checks every search strategy (ICB,
// DFS, CSB, parallel ICB, cache on/off, replay, minimization, both race
// detectors) against it. Any violated property is shrunk to a minimal
// program and persisted as a repro artifact.
//
// Usage:
//
//	icb-fuzz -seed 1 -n 500            # fixed-size deterministic campaign
//	icb-fuzz -seed 1 -duration 55s     # time-boxed campaign (CI smoke)
//	icb-fuzz -duration 10m -out art/   # nightly: time-derived seed, artifacts
//	icb-fuzz -n 200 -events fuzz.ndjson -profile
//
// With -events, campaign progress (programs checked, oracle exec rate,
// skip counts, discrepancies) streams to the same NDJSON event format the
// search binaries write; with -profile, a search profiler aggregates every
// strategy exploration of the campaign and its final snapshot joins that
// stream.
//
// The process exits 1 when any discrepancy was found, 0 on a clean run.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"icb/internal/fuzz"
	"icb/internal/obs"
	"icb/internal/obs/journal"
	"icb/internal/obs/prof"
)

// exitInterrupted is the exit status of a campaign stopped by
// SIGINT/SIGTERM after a graceful flush (128 + SIGINT).
const exitInterrupted = 130

func main() { os.Exit(run()) }

// run is main's body; returning (rather than os.Exit-ing) lets deferred
// cleanups — notably the NDJSON flush — run before the process exits.
func run() int {
	var (
		seed     = flag.Int64("seed", 0, "first generator seed; 0 derives one from the clock (printed for reruns)")
		n        = flag.Int("n", 500, "number of programs to check (ignored with -duration)")
		duration = flag.Duration("duration", 0, "run until this much wall time has passed instead of counting to -n")
		out      = flag.String("out", "", "directory for discrepancy artifacts (specs, reports, repro bundles)")
		maxExecs = flag.Int("oracle-max-execs", 0, "per-program oracle execution cap (default 6000); bigger programs are skipped")
		quiet    = flag.Bool("q", false, "suppress progress output (discrepancies still print)")
		events   = flag.String("events", "", "write the structured campaign event stream (NDJSON) to this file")
		profile  = flag.Bool("profile", false, "attach the search profiler across all strategy runs; the final snapshot joins the event stream and prints at exit")
		jrnlDir  = flag.String("journal-dir", "", "append this campaign's run record (and event segment) to the journal under this directory")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "icb-fuzz: unexpected arguments: %v\n", flag.Args())
		return 2
	}

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	cfg := fuzz.CampaignConfig{
		Seed:     *seed,
		N:        *n,
		Duration: *duration,
		OutDir:   *out,
		Limits:   fuzz.Limits{MaxExecutions: *maxExecs},
		Log:      os.Stderr,
	}
	if *quiet {
		cfg.Log = nil
	}
	var prf *prof.Profiler
	if *profile {
		prf = prof.New(0)
		cfg.Limits.Profiler = prf
	}
	var sinks []obs.Sink
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icb-fuzz: %v\n", err)
			return 2
		}
		nd := obs.NewNDJSON(f)
		defer func() {
			if err := nd.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "icb-fuzz: events:", err)
			}
			f.Close()
		}()
		sinks = append(sinks, nd)
	}
	var jw *journal.Writer
	if *jrnlDir != "" {
		var err error
		jw, err = journal.New(journal.Config{
			Dir:   *jrnlDir,
			Meta:  journal.Meta{Program: "fuzz", Strategy: "fuzz", Workers: 1, MaxBound: -1, Seed: *seed},
			Every: -1, // no search state to checkpoint; ledger + segment only
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "icb-fuzz: %v\n", err)
			return 2
		}
		defer func() {
			if err := jw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "icb-fuzz: journal:", err)
			}
		}()
		sinks = append(sinks, jw)
	}
	if len(sinks) > 0 {
		cfg.Sink = obs.Multi(sinks...)
	}

	// First signal: graceful stop at the next program boundary — stats,
	// event stream and the journal ledger still flush; exit 130. Second
	// signal: force quit.
	stop := &atomic.Bool{}
	cfg.Stop = stop
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	var interrupted atomic.Bool
	go func() {
		s := <-sigc
		interrupted.Store(true)
		stop.Store(true)
		fmt.Fprintf(os.Stderr, "icb-fuzz: %v: finishing the current program and flushing (repeat to force quit)\n", s)
		<-sigc
		os.Exit(exitInterrupted)
	}()

	fmt.Fprintf(os.Stderr, "icb-fuzz: seed=%d", *seed)
	if *duration > 0 {
		fmt.Fprintf(os.Stderr, " duration=%s\n", *duration)
	} else {
		fmt.Fprintf(os.Stderr, " n=%d\n", *n)
	}

	stats, err := fuzz.Campaign(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icb-fuzz: %v\n", err)
		return 1
	}
	fmt.Print(stats.Summary())
	if jw != nil {
		// Fuzz campaigns join the same cross-run ledger the search binaries
		// use: executions are the oracle's, and discrepancies play the bug
		// role so icb-campaign diff flags a newly discrepant strategy.
		rec := &obs.RunRecord{
			DurationNS:     stats.Duration.Nanoseconds(),
			Executions:     stats.Executions,
			Interrupted:    interrupted.Load(),
			BoundCompleted: -1,
		}
		for _, d := range stats.Discrepancies {
			rec.Bugs = append(rec.Bugs, obs.RunBug{Kind: d.Property, Message: d.Detail})
		}
		if err := jw.FinishRun(rec); err != nil {
			fmt.Fprintln(os.Stderr, "icb-fuzz: journal:", err)
		}
	}
	if prf != nil {
		d := prf.Profile()
		var total int64
		for _, p := range d.Phases {
			if p.Phase == obs.PhaseReplay || p.Phase == obs.PhaseExplore {
				total += p.NS
			}
		}
		fmt.Printf("profiler: %.1f ms of strategy execution time across the campaign (sampled phases 1-in-%d)\n",
			float64(total)/1e6, d.SampleEvery)
	}
	if !stats.Clean() {
		fmt.Fprintf(os.Stderr, "icb-fuzz: %d discrepancies (seed %d)\n", len(stats.Discrepancies), *seed)
		if *out != "" {
			fmt.Fprintf(os.Stderr, "icb-fuzz: artifacts under %s\n", *out)
		}
		return 1
	}
	if interrupted.Load() {
		return exitInterrupted
	}
	return 0
}
