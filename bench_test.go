package icb_test

// Benchmarks regenerating each table and figure of the paper's evaluation,
// plus micro-benchmarks of the engine's hot paths. The table/figure
// benches run the same code paths as `icb-bench -exp <name>` at reduced
// budgets so that one b.N iteration stays in the hundreds of milliseconds;
// the command regenerates the full-scale versions.

import (
	"fmt"
	"io"
	"testing"

	"icb"
	"icb/internal/core"
	"icb/internal/exper"
	"icb/internal/hb"
	"icb/internal/progs/txnmgr"
	"icb/internal/progs/wsq"
	"icb/internal/race"
	"icb/internal/sched"
	"icb/internal/zing"
	"icb/internal/zml"
)

// benchCfg keeps one iteration fast; icb-bench runs the full budgets.
var benchCfg = exper.Config{Budget: 300}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Table1Data(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table2Data(exper.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	// Reduced work-stealing queue; the full sweep is ~30s (icb-bench).
	prog := wsq.Program(wsq.Correct, wsq.Params{Items: 2, Size: 2})
	for i := 0; i < b.N; i++ {
		res := core.Explore(prog, core.ICB{}, core.Options{
			MaxPreemptions: -1, CheckRaces: true, StateCache: true,
		})
		if !res.Exhausted {
			b.Fatal("not exhausted")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ss := exper.Fig2Data(benchCfg); len(ss) != 5 {
			b.Fatalf("series = %d", len(ss))
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	// The transaction-manager quarter of Figure 4 (explicit-state); the
	// stateless sweeps are covered by BenchmarkFig1.
	p, err := txnmgr.Compile(txnmgr.Correct)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := zing.CheckICB(p, zing.Options{MaxPreemptions: -1})
		if !res.Exhausted {
			b.Fatal("not exhausted")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ss := exper.Fig5Data(benchCfg); len(ss) != 5 {
			b.Fatalf("series = %d", len(ss))
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ss := exper.Fig6Data(benchCfg); len(ss) != 5 {
			b.Fatalf("series = %d", len(ss))
		}
	}
}

// BenchmarkExecution measures the cost of a single modeled execution
// (goroutine creation, baton passing, event logging).
func BenchmarkExecution(b *testing.B) {
	prog := func(t *icb.T) {
		m := icb.NewMutex(t, "m")
		x := icb.NewInt(t, "x", 0)
		w := t.Go("w", func(t *icb.T) {
			for i := 0; i < 10; i++ {
				m.Lock(t)
				x.Update(t, func(v int) int { return v + 1 })
				m.Unlock(t)
			}
		})
		t.Join(w)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := sched.Run(prog, sched.FirstEnabled{}, sched.Config{})
		if out.Status != sched.StatusTerminated {
			b.Fatal(out)
		}
	}
}

// BenchmarkICBExhaustive measures a complete bounded search of a small
// program (executions per second is the number that matters for scaling).
func BenchmarkICBExhaustive(b *testing.B) {
	prog := wsq.Program(wsq.Correct, wsq.Params{Items: 2, Size: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Explore(prog, core.ICB{}, core.Options{MaxPreemptions: 2, CheckRaces: true})
		if len(res.Bugs) != 0 {
			b.Fatal("unexpected bug")
		}
	}
}

// BenchmarkParallelICB measures the bound-synchronized parallel search at
// increasing worker counts over the same exhaustive bound-2 drain as
// BenchmarkICBExhaustive. Speedup over the workers=1 sub-benchmark is
// bounded by min(workers, CPU count); on a single-CPU host the spread
// between sub-benchmarks is pure coordination overhead.
func BenchmarkParallelICB(b *testing.B) {
	prog := wsq.Program(wsq.StealUnlocked, wsq.Params{Items: 2, Size: 2})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := core.Explore(prog, core.ParallelICB{Workers: w},
					core.Options{MaxPreemptions: 2, CheckRaces: true})
				if len(res.Bugs) == 0 {
					b.Fatal("seeded bug not found")
				}
			}
		})
	}
}

// BenchmarkRaceDetectors compares the vector-clock and Goldilocks
// detectors on the same event stream.
func BenchmarkRaceDetectors(b *testing.B) {
	prog := func(t *icb.T) {
		m := icb.NewMutex(t, "m")
		vars := make([]*icb.Int, 4)
		for i := range vars {
			vars[i] = icb.NewInt(t, "v", 0)
		}
		var ws []*icb.T
		for i := 0; i < 3; i++ {
			ws = append(ws, t.Go("w", func(t *icb.T) {
				for j := 0; j < 8; j++ {
					m.Lock(t)
					vars[j%4].Update(t, func(v int) int { return v + 1 })
					m.Unlock(t)
				}
			}))
		}
		for _, w := range ws {
			t.Join(w)
		}
	}
	b.Run("vectorclock", func(b *testing.B) {
		det := race.NewDetector()
		for i := 0; i < b.N; i++ {
			det.Reset()
			sched.Run(prog, sched.FirstEnabled{}, sched.Config{Observers: []sched.Observer{det}})
		}
	})
	b.Run("goldilocks", func(b *testing.B) {
		det := race.NewGoldilocks()
		for i := 0; i < b.N; i++ {
			det.Reset()
			sched.Run(prog, sched.FirstEnabled{}, sched.Config{Observers: []sched.Observer{det}})
		}
	})
}

// BenchmarkFingerprint measures the per-event cost of the happens-before
// fingerprinter.
func BenchmarkFingerprint(b *testing.B) {
	evs := make([]sched.Event, 256)
	for i := range evs {
		evs[i] = sched.Event{
			TID:   sched.TID(i % 4),
			Index: i / 4,
			Step:  i,
			Op:    sched.Op{Kind: sched.OpAcquire, Var: sched.VarID(i % 8), Class: sched.ClassSync},
		}
	}
	fp := hb.NewFingerprinter(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fp.Reset()
		for _, ev := range evs {
			fp.OnEvent(ev)
		}
	}
}

// BenchmarkZMLCompile measures the modeling-language pipeline.
func BenchmarkZMLCompile(b *testing.B) {
	src := txnmgr.Source(txnmgr.Correct)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := zml.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZingStep measures explicit-state stepping (clone + execute +
// serialize), the inner loop of the ZING-style checker.
func BenchmarkZingStep(b *testing.B) {
	p, err := txnmgr.Compile(txnmgr.Correct)
	if err != nil {
		b.Fatal(err)
	}
	s0, fail := p.NewState()
	if fail != nil {
		b.Fatal(fail)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := s0.Clone()
		if fail := p.Step(s, 0, 0); fail != nil {
			b.Fatal(fail)
		}
		_ = s.Key()
	}
}

// BenchmarkExperAll regenerates every experiment end to end at the reduced
// budget, i.e. the whole `icb-bench -exp all` pipeline.
func BenchmarkExperAll(b *testing.B) {
	if testing.Short() {
		b.Skip("runs the full sweeps")
	}
	for i := 0; i < b.N; i++ {
		if err := exper.Run("all", io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}
