// Package icb is a systematic concurrency-testing library for Go: a
// from-scratch reproduction of "Iterative Context Bounding for Systematic
// Testing of Multithreaded Programs" (Musuvathi & Qadeer, PLDI 2007), the
// CHESS/ZING paper.
//
// Programs under test are written against the library's modeled threading
// and synchronization API (threads, mutexes, events, semaphores,
// interlocked integers, condition variables, FIFO queues) instead of the
// Go runtime's. The checker then executes the program under every relevant
// schedule, in increasing order of preempting context switches — iterative
// context bounding — so the first failure found is one with the fewest
// possible preemptions, and completing bound c certifies that any
// remaining bug needs at least c+1 preemptions.
//
// A minimal session:
//
//	prog := func(t *icb.T) {
//		x := icb.NewAtomicInt(t, "x", 0)
//		w := t.Go("writer", func(t *icb.T) { x.Store(t, 1); x.Store(t, 0) })
//		t.Assert(x.Load(t) == 0, "observed transient value")
//		t.Join(w)
//	}
//	res := icb.Explore(prog, icb.ICB(), icb.Options{MaxPreemptions: 2, CheckRaces: true})
//	if bug := res.FirstBug(); bug != nil {
//		fmt.Println(bug, "schedule:", bug.Schedule) // deterministic replay
//	}
//
// Beyond the stateless checker, the module contains an explicit-state
// checker for models written in a small modeling language (see the
// internal zml and zing packages and the zingi command), the paper's six
// benchmark programs with their seeded bugs, and a harness regenerating
// every table and figure of the paper's evaluation (the icb-bench
// command).
package icb

import (
	"icb/internal/baseline"
	"icb/internal/conc"
	"icb/internal/core"
	"icb/internal/sched"
)

// T is a modeled thread; program code performs all shared-state operations
// through it.
type T = sched.T

// Program is the body of the main thread of a program under test.
type Program = sched.Program

// Outcome summarizes a single execution.
type Outcome = sched.Outcome

// Schedule is a replayable decision sequence.
type Schedule = sched.Schedule

// ReplayController replays a recorded schedule deterministically.
type ReplayController = sched.ReplayController

// FirstEnabled is the trivial nonpreemptive scheduler.
type FirstEnabled = sched.FirstEnabled

// Config parameterizes a single Run.
type Config = sched.Config

// Options configures an exploration; see core.Options for field docs.
type Options = core.Options

// Result summarizes an exploration.
type Result = core.Result

// Bug is one found defect with a replayable schedule.
type Bug = core.Bug

// Strategy is a search strategy over the scheduling tree.
type Strategy = core.Strategy

// Explore runs the given search strategy over the program.
func Explore(prog Program, s Strategy, opt Options) Result {
	return core.Explore(prog, s, opt)
}

// Run executes prog once under ctrl (useful for replaying bug schedules).
func Run(prog Program, ctrl sched.Controller, cfg sched.Config) Outcome {
	return sched.Run(prog, ctrl, cfg)
}

// ICB returns the iterative context-bounding strategy — the paper's
// contribution and the recommended default.
func ICB() Strategy { return core.ICB{} }

// CSB returns pure context-switch bounding (every switch costs budget),
// the ablation of ICB's preempting/nonpreempting distinction. Use ICB
// unless you are measuring why the distinction matters.
func CSB() Strategy { return core.CSB{} }

// MinimizeSchedule shrinks a failing schedule while preserving the
// failure; see core.MinimizeSchedule.
func MinimizeSchedule(prog Program, schedule Schedule, opt Options) Schedule {
	return core.MinimizeSchedule(prog, schedule, opt)
}

// ParseSchedule parses a schedule's String form ("t0 t2 d1 ...").
func ParseSchedule(s string) (Schedule, error) { return sched.ParseSchedule(s) }

// DFS returns unbounded depth-first search; depth > 0 truncates executions
// (the paper's db:N baseline).
func DFS(depth int) Strategy { return baseline.DFS{Depth: depth} }

// IDFS returns iterative depth bounding starting at start and growing by
// step.
func IDFS(start, step int) Strategy { return baseline.IDFS{Start: start, Step: step} }

// Random returns the uniform random-walk strategy.
func Random(seed int64) Strategy { return baseline.Random{Seed: seed} }

// PCT returns probabilistic concurrency testing with the given bug depth
// (Burckhardt et al., ASPLOS 2010), the successor of iterative context
// bounding for randomized testing. Complementary to ICB: per-execution
// probabilistic guarantees instead of exhaustive bound guarantees.
func PCT(depth int, seed int64) Strategy { return baseline.PCT{Depth: depth, Seed: seed} }

// Shared-state primitives, re-exported from the modeled synchronization
// library (package conc).

// Var is a shared data variable of type V; accesses are race-checked.
type Var[V any] = conc.Var[V]

// Int is a shared data integer.
type Int = conc.Int

// AtomicInt is an interlocked integer; every operation is a single
// synchronization access.
type AtomicInt = conc.AtomicInt

// Mutex is a non-reentrant lock.
type Mutex = conc.Mutex

// RWMutex is a reader-writer lock.
type RWMutex = conc.RWMutex

// Event models a Win32 manual- or auto-reset event.
type Event = conc.Event

// Semaphore is a counting semaphore.
type Semaphore = conc.Semaphore

// WaitGroup counts outstanding work.
type WaitGroup = conc.WaitGroup

// Cond is a condition variable with FIFO wakeup.
type Cond = conc.Cond

// Queue is a FIFO message queue.
type Queue[V any] = conc.Queue[V]

// NewVar allocates a shared data variable.
func NewVar[V any](t *T, name string, init V) *Var[V] { return conc.NewVar(t, name, init) }

// NewInt allocates a shared data integer.
func NewInt(t *T, name string, init int) *Int { return conc.NewInt(t, name, init) }

// NewAtomicInt allocates an interlocked integer.
func NewAtomicInt(t *T, name string, init int64) *AtomicInt { return conc.NewAtomicInt(t, name, init) }

// NewMutex allocates an unlocked mutex.
func NewMutex(t *T, name string) *Mutex { return conc.NewMutex(t, name) }

// NewRWMutex allocates an unlocked reader-writer lock.
func NewRWMutex(t *T, name string) *RWMutex { return conc.NewRWMutex(t, name) }

// NewEvent allocates an event; auto selects auto-reset semantics.
func NewEvent(t *T, name string, auto, initial bool) *Event {
	return conc.NewEvent(t, name, auto, initial)
}

// NewSemaphore allocates a semaphore with n permits.
func NewSemaphore(t *T, name string, n int) *Semaphore { return conc.NewSemaphore(t, name, n) }

// NewWaitGroup allocates a wait group with an initial count.
func NewWaitGroup(t *T, name string, n int) *WaitGroup { return conc.NewWaitGroup(t, name, n) }

// NewCond allocates a condition variable bound to m.
func NewCond(t *T, name string, m *Mutex) *Cond { return conc.NewCond(t, name, m) }

// NewQueue allocates a FIFO queue; capacity <= 0 means unbounded.
func NewQueue[V any](t *T, name string, capacity int) *Queue[V] {
	return conc.NewQueue[V](t, name, capacity)
}
