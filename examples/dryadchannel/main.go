// Dryad use-after-free: reproduce Figure 3 of the paper. A channel's
// worker thread reports itself finished before calling AlertApplication;
// one preemption right before EnterCriticalSection lets the main thread
// return from Close() and delete the channel under the worker's feet. The
// exposing trace has exactly one preempting context switch but several
// nonpreempting ones — the kind of bug depth-first search drowns in.
//
// Run: go run ./examples/dryadchannel
package main

import (
	"fmt"

	"icb/internal/baseline"
	"icb/internal/core"
	"icb/internal/progs/dryad"
	"icb/internal/sched"
)

func main() {
	prog := dryad.Program(dryad.AlertWindow, dryad.Params{})

	fmt.Println("searching executions in order of preemption count...")
	res := core.Explore(prog, core.ICB{}, core.Options{
		MaxPreemptions: 1,
		CheckRaces:     true,
		StopOnFirstBug: true,
	})
	bug := res.FirstBug()
	if bug == nil {
		fmt.Println("bug not found (unexpected)")
		return
	}
	fmt.Printf("found after %d executions: %s\n", bug.Execution, bug.Message)
	fmt.Printf("context switches: %d preempting, %d nonpreempting (the Figure 3 shape)\n",
		bug.Preemptions, bug.ContextSwitches-bug.Preemptions)

	fmt.Println("\nfull trace of the failing execution:")
	out := sched.Run(prog,
		&sched.ReplayController{Prefix: bug.Schedule, Tail: sched.FirstEnabled{}},
		sched.Config{RecordTrace: true})
	lines := out.TraceStrings()
	prev := sched.NoTID
	for i, ev := range out.Trace {
		marker := "  "
		if ev.TID != prev && prev != sched.NoTID {
			marker = "->" // context switch
		}
		prev = ev.TID
		fmt.Printf("%s %s\n", marker, lines[i])
	}
	fmt.Printf("\nreplay outcome: %s\n", out)

	fmt.Println("\nfor contrast, depth-first search with the same execution budget:")
	dfsBudget := bug.Execution
	dres := core.Explore(prog, baseline.DFS{}, core.Options{
		MaxExecutions:  dfsBudget,
		CheckRaces:     true,
		StopOnFirstBug: true,
	})
	if dres.FirstBug() == nil {
		fmt.Printf("dfs found nothing in %d executions — the bound-ordered search wins\n", dfsBudget)
	} else {
		fmt.Printf("dfs found it too (%s)\n", dres.FirstBug().Message)
	}
}
