// Quickstart: model a tiny concurrent program and let iterative context
// bounding find its bug with the fewest possible preemptions.
//
// The program is the classic check-then-act race: two tellers withdraw
// from one account, each checking the balance before debiting. Stress
// tests almost never catch it; the ICB checker finds it systematically and
// reports a replayable schedule with exactly one preemption.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"icb/internal/conc"
	"icb/internal/core"
	"icb/internal/sched"
)

// account is the (buggy) shared object: balance is protected by a lock,
// but withdraw releases it between the check and the debit.
type account struct {
	lock    *conc.Mutex
	balance *conc.Int
}

func (a *account) withdraw(t *sched.T, amount int) bool {
	a.lock.Lock(t)
	enough := a.balance.Load(t) >= amount
	a.lock.Unlock(t)
	if !enough {
		return false
	}
	// BUG: the balance may have changed since the check.
	a.lock.Lock(t)
	a.balance.Update(t, func(b int) int { return b - amount })
	a.lock.Unlock(t)
	return true
}

// program is the test driver: the model checker will run it under every
// relevant schedule.
func program(t *sched.T) {
	acct := &account{
		lock:    conc.NewMutex(t, "account.lock"),
		balance: conc.NewInt(t, "account.balance", 100),
	}
	teller := func(t *sched.T) { acct.withdraw(t, 80) }
	w1 := t.Go("teller1", teller)
	w2 := t.Go("teller2", teller)
	t.Join(w1)
	t.Join(w2)
	t.Assert(acct.balance.Load(t) >= 0, "account overdrawn: balance = %d", acct.balance.Load(t))
}

func main() {
	fmt.Println("exploring all schedules in order of preemption count...")
	res := core.Explore(program, core.ICB{}, core.Options{
		MaxPreemptions: -1,
		CheckRaces:     true,
		StopOnFirstBug: true,
	})

	fmt.Printf("ran %d executions, visited %d states\n", res.Executions, res.States)
	bug := res.FirstBug()
	if bug == nil {
		fmt.Println("no bug found — unexpected for this example!")
		return
	}
	fmt.Printf("found: %s\n", bug.String())
	fmt.Printf("this is the simplest possible failure: it needs exactly %d preemption(s)\n", bug.Preemptions)
	fmt.Printf("replayable schedule: %s\n", bug.Schedule)

	// Replay it deterministically — same schedule, same failure, every time.
	out := sched.Run(program,
		&sched.ReplayController{Prefix: bug.Schedule, Tail: sched.FirstEnabled{}},
		sched.Config{})
	fmt.Printf("replay: %s\n", out)
}
