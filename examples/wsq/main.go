// Work-stealing queue exploration: reproduce the paper's §2.1 experience
// report. The implementor handed over three subtly buggy variations of a
// non-blocking work-stealing deque; iterative context bounding exposes
// each within a context-switch bound of two, and a complete bounded search
// certifies the corrected queue up to that bound.
//
// Run: go run ./examples/wsq
package main

import (
	"fmt"

	"icb/internal/core"
	"icb/internal/progs/wsq"
)

func main() {
	b := wsq.Benchmark()

	fmt.Println("== seeded defects ==")
	for _, bug := range b.Bugs {
		res := core.Explore(bug.Program, core.ICB{}, core.Options{
			MaxPreemptions: 3,
			CheckRaces:     true,
			StopOnFirstBug: true,
		})
		found := res.FirstBug()
		if found == nil {
			fmt.Printf("%-24s NOT FOUND within bound 3 (unexpected)\n", bug.ID)
			continue
		}
		fmt.Printf("%-24s exposed with %d preemption(s) after %d executions: %s\n",
			bug.ID, found.Preemptions, found.Execution, found.Message)
	}

	fmt.Println("\n== corrected queue ==")
	res := core.Explore(b.Correct, core.ICB{}, core.Options{
		MaxPreemptions: 2,
		CheckRaces:     true,
		StateCache:     true,
	})
	fmt.Printf("explored %d executions (%d states) up to bound %d: %d bugs\n",
		res.Executions, res.States, res.BoundCompleted, len(res.Bugs))
	if res.BoundCompleted == 2 && len(res.Bugs) == 0 {
		fmt.Println("guarantee: any remaining bug needs at least 3 preemptions")
	}
}
