// ZML model checking: write a small concurrent model in the ZML modeling
// language and verify it with the explicit-state checker — the ZING side
// of the reproduction. We check Peterson's mutual-exclusion algorithm and
// a broken variant that drops the turn variable.
//
// Run: go run ./examples/zmlcheck
package main

import (
	"fmt"

	"icb/internal/zing"
	"icb/internal/zml"
)

const peterson = `
// Peterson's algorithm for two threads.
global bool flag0; global bool flag1;
global int turn;
global int incrit;

proc p(int me) {
	int other = 1 - me;
	if (me == 0) { flag0 = true; } else { flag1 = true; }
	turn = other;
	if (me == 0) {
		wait(!flag1 || turn == 0);
	} else {
		wait(!flag0 || turn == 1);
	}
	// critical section
	incrit = incrit + 1;
	assert(incrit == 1);
	incrit = incrit - 1;
	if (me == 0) { flag0 = false; } else { flag1 = false; }
}

proc main() {
	spawn p(0);
	spawn p(1);
}
`

// broken omits the turn handshake: both threads can pass the gate.
const broken = `
global bool flag0; global bool flag1;
global int incrit;

proc p(int me) {
	if (me == 0) { flag0 = true; } else { flag1 = true; }
	// BUG: checking only the other flag admits both threads when the
	// writes interleave with the checks.
	incrit = incrit + 1;
	assert(incrit == 1);
	incrit = incrit - 1;
	if (me == 0) { flag0 = false; } else { flag1 = false; }
}

proc main() {
	spawn p(0);
	spawn p(1);
}
`

func check(name, src string) {
	prog, err := zml.Compile(src)
	if err != nil {
		fmt.Printf("%s: compile error: %v\n", name, err)
		return
	}
	res := zing.CheckICB(prog, zing.Options{MaxPreemptions: -1, StopOnFirstBug: true})
	fmt.Printf("%s: %d states, %d work items, exhausted=%v\n", name, res.States, res.Items, res.Exhausted)
	if bug := res.FirstBug(); bug != nil {
		fmt.Printf("  BUG at %d preemption(s): %s\n", bug.Preemptions, bug.Msg)
	} else {
		fmt.Println("  verified: no assertion failures, no deadlocks on any schedule")
	}
}

func main() {
	check("peterson", peterson)
	check("broken-peterson", broken)
}
