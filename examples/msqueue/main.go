// Lock-free queue verification: a Michael–Scott queue built on the
// library's interlocked primitives, exhaustively checked by iterative
// context bounding. This is the kind of non-blocking algorithm (like the
// paper's work-stealing queue) whose bugs live in 1–2 preemption windows —
// and whose correctness argument is exactly a claim about all
// interleavings, which the checker can discharge for small instances.
//
// Nodes come from a fetch-and-add allocator (no reuse, hence no ABA), the
// published/unpublished discipline of node values is validated by the
// happens-before race detector, and the final assertion checks that every
// enqueued item is dequeued exactly once.
//
// Run: go run ./examples/msqueue
package main

import (
	"fmt"

	"icb"
)

// msq is a Michael–Scott queue over an arena of nodes. Indices are
// 1-based; 0 is the nil pointer. Node 1 is the initial dummy.
type msq struct {
	head  *icb.AtomicInt // index of the dummy preceding the first element
	tail  *icb.AtomicInt // index at or before the last node
	alloc *icb.AtomicInt // bump allocator
	next  []*icb.AtomicInt
	val   []*icb.Int
}

func newMSQ(t *icb.T, capacity int) *msq {
	q := &msq{
		head:  icb.NewAtomicInt(t, "msq.head", 1),
		tail:  icb.NewAtomicInt(t, "msq.tail", 1),
		alloc: icb.NewAtomicInt(t, "msq.alloc", 1),
	}
	q.next = append(q.next, nil) // index 0 unused
	q.val = append(q.val, nil)
	for i := 1; i <= capacity; i++ {
		q.next = append(q.next, icb.NewAtomicInt(t, fmt.Sprintf("msq.next[%d]", i), 0))
		q.val = append(q.val, icb.NewInt(t, fmt.Sprintf("msq.val[%d]", i), 0))
	}
	return q
}

// Enqueue appends v (multi-producer safe).
func (q *msq) Enqueue(t *icb.T, v int) {
	n := q.alloc.Add(t, 1) // fresh node, never reused
	q.val[n].Store(t, v)   // unpublished: no other thread can reach n yet
	for {
		tl := q.tail.Load(t)
		nxt := q.next[tl].Load(t)
		if nxt == 0 {
			if q.next[tl].CompareAndSwap(t, 0, n) {
				// Publication point: val[n] is now reachable.
				q.tail.CompareAndSwap(t, tl, n)
				return
			}
		} else {
			// Help a lagging enqueuer swing the tail.
			q.tail.CompareAndSwap(t, tl, nxt)
		}
	}
}

// Dequeue removes the oldest element (multi-consumer safe).
func (q *msq) Dequeue(t *icb.T) (int, bool) {
	for {
		h := q.head.Load(t)
		tl := q.tail.Load(t)
		nxt := q.next[h].Load(t)
		if h == tl {
			if nxt == 0 {
				return 0, false
			}
			q.tail.CompareAndSwap(t, tl, nxt)
			continue
		}
		v := q.val[nxt].Load(t)
		if q.head.CompareAndSwap(t, h, nxt) {
			return v, true
		}
	}
}

// Scenario builds the verification driver: producers enqueue distinct
// items while a consumer drains; after the joins, the remaining items are
// drained and the multiset is checked.
func Scenario(producers, itemsEach int) icb.Program {
	return func(t *icb.T) {
		total := producers * itemsEach
		q := newMSQ(t, total+1)
		consumed := icb.NewVar[[]int](t, "consumed", nil)

		var ws []*icb.T
		for p := 0; p < producers; p++ {
			p := p
			ws = append(ws, t.Go("producer", func(t *icb.T) {
				for i := 0; i < itemsEach; i++ {
					q.Enqueue(t, p*itemsEach+i+1)
				}
			}))
		}
		ws = append(ws, t.Go("consumer", func(t *icb.T) {
			var got []int
			// Attempt a bounded number of dequeues (no spinning: every
			// attempt is productive or observes an empty queue).
			for i := 0; i < total; i++ {
				if v, ok := q.Dequeue(t); ok {
					got = append(got, v)
				}
			}
			consumed.Store(t, got)
		}))
		for _, w := range ws {
			t.Join(w)
		}

		// Drain the rest single-threadedly.
		rest := consumed.Load(t)
		for {
			v, ok := q.Dequeue(t)
			if !ok {
				break
			}
			rest = append(rest, v)
		}
		seen := make([]bool, total+1)
		for _, v := range rest {
			t.Assert(v >= 1 && v <= total, "dequeued garbage %d", v)
			t.Assert(!seen[v], "item %d dequeued twice", v)
			seen[v] = true
		}
		for i := 1; i <= total; i++ {
			t.Assert(seen[i], "item %d lost", i)
		}
	}
}

func main() {
	fmt.Println("verifying a Michael–Scott queue (2 producers x 1 item, 1 consumer)...")
	res := icb.Explore(Scenario(2, 1), icb.ICB(), icb.Options{
		MaxPreemptions: 2,
		CheckRaces:     true,
		StateCache:     true,
	})
	fmt.Printf("executions=%d states=%d boundCompleted=%d bugs=%d\n",
		res.Executions, res.States, res.BoundCompleted, len(res.Bugs))
	if len(res.Bugs) > 0 {
		fmt.Println("BUG:", res.Bugs[0].String())
		return
	}
	fmt.Println("verified: FIFO-per-producer queue delivers every item exactly once")
	fmt.Println("up to 2 preemptions (raise MaxPreemptions for stronger guarantees)")
}
