package main

import (
	"testing"

	"icb"
	"icb/icbtest"
)

func TestMSQueueBound2(t *testing.T) {
	res := icbtest.Check(t, Scenario(2, 1), icbtest.Options{MaxPreemptions: 2})
	if res.BoundCompleted != 2 {
		t.Fatalf("bound 2 not completed: %d", res.BoundCompleted)
	}
}

func TestMSQueueSingleProducerExhaustive(t *testing.T) {
	res := icbtest.Check(t, Scenario(1, 2), icbtest.Options{})
	icbtest.Exhausted(t, res)
}

func TestMSQueueSequential(t *testing.T) {
	// FIFO order under the canonical schedule.
	prog := func(t *icb.T) {
		q := newMSQ(t, 4)
		q.Enqueue(t, 10)
		q.Enqueue(t, 20)
		v, ok := q.Dequeue(t)
		t.Assert(ok && v == 10, "got %d,%v want 10", v, ok)
		q.Enqueue(t, 30)
		v, ok = q.Dequeue(t)
		t.Assert(ok && v == 20, "got %d,%v want 20", v, ok)
		v, ok = q.Dequeue(t)
		t.Assert(ok && v == 30, "got %d,%v want 30", v, ok)
		_, ok = q.Dequeue(t)
		t.Assert(!ok, "dequeue from empty succeeded")
	}
	out := icb.Run(prog, icb.FirstEnabled{}, icb.Config{})
	if out.Status.Buggy() {
		t.Fatalf("sequential check: %v", out)
	}
}
