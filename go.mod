module icb

go 1.23
